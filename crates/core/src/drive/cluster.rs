//! The cluster: per-process state, the shared-memory access path, fault
//! dispatch, and measurement windows.
//!
//! The cluster owns every simulated process, the golden initial image of
//! the shared segment, and all protocol-global state (homes, version
//! indices, copysets). Applications run *barrier-synchronously*: within an
//! epoch each process's phase body executes in turn against its own page
//! copies — sound for data-race-free programs under LRC, because no process
//! may observe another's same-epoch writes — and the barrier engine
//! (`drive::barrier`) performs the protocol exchange between epochs.

use std::cell::RefCell;
use std::rc::Rc;

use dsm_net::Network;
use dsm_sim::{Category, Clock, DetRng, FastMap, SharedScheduler, Time, VirtualTimeScheduler};
use dsm_vm::{as_bytes, BufPool, FaultKind, PageBuf, PageId, PageStore, Pod, Protection};

use crate::check::{CheckEvent, CheckSink};
use crate::config::{ProtocolKind, RunConfig};
use crate::drive::stats::{RunReport, RunStats};
use crate::mem::SharedSegment;
use crate::proto::bar::BarDeliveries;
use crate::proto::copyset::CopySet;
use crate::proto::lmw::LmwProc;
use crate::proto::overdrive::{OdMode, OdProc};

/// One simulated process.
pub struct Proc {
    // audit: skip(hash): virtual time is excluded by design — timing never
    // influences control flow or the checker
    pub(crate) clock: Clock,
    pub(crate) store: PageStore,
    /// Pages write-trapped (or overdrive-predicted) this epoch, in order.
    pub(crate) dirty: Vec<PageId>,
    /// Protection changes issued this epoch (stress-model input).
    // audit: skip(hash): per-epoch cost-model input, timing-only
    // audit: scratch: per-epoch protection counter, zeroed in barrier_core
    pub(crate) protect_ops_epoch: u32,
    /// Homeless-protocol per-process state.
    pub(crate) lmw: LmwProc,
    /// Overdrive per-process state.
    pub(crate) od: OdProc,
}

impl Proc {
    fn new(page_size: usize) -> Proc {
        Proc {
            clock: Clock::new(),
            store: PageStore::new(page_size),
            dirty: Vec::new(),
            protect_ops_epoch: 0,
            lmw: LmwProc::default(),
            od: OdProc::default(),
        }
    }
}

/// The simulated DSM cluster.
// The flags are genuinely independent (exploring, migrated,
// migration_pending, ...), not an encoded state machine.
#[allow(clippy::struct_excessive_bools)]
pub struct Cluster {
    // audit: skip(snap, hash): immutable per-run; the snapshot pins it as
    // config_digest and restore re-supplies the same config
    pub(crate) cfg: RunConfig,
    // audit: skip(hash): allocation layout is frozen at distribute() and is a
    // pure function of the config, which the snapshot pins
    pub(crate) seg: SharedSegment,
    /// Golden initial contents of every page (what setup wrote).
    // audit: skip(hash): frozen at distribute(); identical by construction for
    // equal configs (restore verifies image_digest)
    pub(crate) image: Vec<PageBuf>,
    pub(crate) procs: Vec<Proc>,
    // audit: skip(hash): wire/transport bookkeeping affects timing only;
    // excluded like clocks and cost statistics
    pub(crate) net: Network,
    // audit: skip(hash): cost statistics are excluded by design — timing never
    // influences control flow or the checker
    // audit: scratch: measurement counters, reset wholesale at start_measurement
    pub(crate) stats: RunStats,
    /// Barrier counter; the epoch between barriers `k-1` and `k` is `k`.
    pub(crate) epoch: u64,
    pub(crate) iter: usize,
    pub(crate) site: usize,
    // audit: skip(hash): fixed per-app phase count, set once at distribute()
    pub(crate) phases_per_iter: usize,
    /// Per-page home process (bar protocols).
    pub(crate) homes: Vec<usize>,
    /// Per-page version index, logically maintained by the home.
    pub(crate) versions: Vec<u32>,
    /// Per-page copysets, home-maintained and globally distributed at
    /// barriers (bar-u family). Sparse: a page gets an entry the first
    /// time any process caches it, so resident memory tracks actual
    /// sharing — O(shared pages × sharers) — never O(nodes × pages).
    pub(crate) copysets: FastMap<u32, CopySet>,
    /// Latest epoch in which each page was (noticed as) written, and by
    /// whom — maintained from merged barrier notices (homeless protocols).
    pub(crate) last_write_epoch: Vec<u64>,
    pub(crate) last_writer: Vec<u16>,
    /// Writers observed during the first iteration (migration input).
    /// Sparse: entries exist only for pages somebody wrote.
    pub(crate) iter_writers: FastMap<u32, CopySet>,
    /// Write-epoch counts, keyed by (page, pid); entries exist only for
    /// pairs that actually wrote (the dense predecessor was a
    /// `page * nprocs + pid` flattened vector — O(nodes × pages)).
    pub(crate) iter_write_counts: FastMap<(u32, u16), u32>,
    pub(crate) migrated: bool,
    /// Overdrive cluster mode.
    pub(crate) od_mode: OdMode,
    pub(crate) od_revert_pending: bool,
    /// Deliveries queued during the pre-barrier step, consumed at release.
    // audit: skip(hash): intra-barrier scratch; hashes are taken at barriers,
    // where barrier_core proves it drained
    pub(crate) bar_deliveries: BarDeliveries,
    // audit: skip(hash): measurement-window flag; never influences protocol
    // decisions
    pub(crate) measuring: bool,
    /// Result of the most recent reduction, visible to all processes.
    pub(crate) last_reduction: Vec<f64>,
    /// Hidden shared arrays backing reduction emulation on lmw.
    // audit: skip(hash): base/len windows into the shared segment; the backing
    // data lives in pages already folded by frame_hash
    pub(crate) reduce_mem: Option<crate::drive::reduce::ReduceMem>,
    // audit: skip(hash): setup-phase latch, always true once the cluster runs
    pub(crate) distributed: bool,
    /// Optional checking sink; `None` (the default) costs one branch per
    /// choke point and leaves the run bit-identical to an unchecked one.
    // audit: skip(hash): the sink's observable history is folded via
    // trace_hash as events are emitted; oracle internals are derived state
    pub(crate) check: Option<Box<dyn CheckSink>>,
    /// Decision scheduler shared with the network. The default
    /// [`VirtualTimeScheduler`] reproduces historical behaviour exactly;
    /// `dsm-explore` installs an enumerating one.
    pub(crate) sched: SharedScheduler,
    /// Cached `sched.exploring()` so the default path pays one branch per
    /// choice point and never constructs candidates.
    pub(crate) exploring: bool,
    /// Set when an exploring scheduler declines to continue at a barrier
    /// checkpoint: the execution is abandoned — callers unwind by early
    /// return, skipping all remaining protocol work, and the driver
    /// discards (or restores over) the now-inconsistent cluster.
    pub(crate) pruned: bool,
    /// Incremental hash of every event emitted so far (exploration only);
    /// folded into the visited-set key so pruning can never hide a checker
    /// verdict.
    pub(crate) trace_hash: u64,
    /// A migration decision was ready but the scheduler deferred it to a
    /// later barrier (exploration only; always false on the default path).
    pub(crate) migration_pending: bool,
    /// Host-side free-lists recycling twin buffers and diff run storage
    /// across flushes. Pure wall-clock optimization: pooled memory is
    /// always fully overwritten before reuse and carries no virtual cost.
    // audit: skip(hash): host-side free-list; recycled buffers carry no
    // logical state
    pub(crate) pool: BufPool,
}

impl Cluster {
    /// Build an empty cluster; allocate shared data through a
    /// [`crate::drive::ctx::SetupCtx`], then call [`Cluster::distribute`].
    pub fn new(cfg: RunConfig) -> Cluster {
        let errs = cfg.sim.validate();
        assert!(errs.is_empty(), "invalid config: {errs:?}");
        let nprocs = cfg.sim.nprocs;
        let page_size = cfg.sim.page_size;
        let rng = DetRng::new(cfg.sim.seed);
        // The same derived stream the network always consumed, now behind
        // the scheduler trait: bit-identical to the pre-scheduler code.
        let sched: SharedScheduler =
            Rc::new(RefCell::new(VirtualTimeScheduler::new(rng.derive(0xA11CE))));
        let net = Network::with_transport(
            nprocs.max(2), // a 1-proc baseline still constructs a network
            cfg.sim.costs.clone(),
            cfg.sim.flush_drop_prob,
            cfg.sim.fault.clone(),
            cfg.sim.transport,
            cfg.sim.rdma.clone(),
            Rc::clone(&sched),
        );
        Cluster {
            seg: SharedSegment::new(page_size),
            image: Vec::new(),
            procs: (0..nprocs).map(|_| Proc::new(page_size)).collect(),
            net,
            stats: RunStats::default(),
            epoch: 1,
            iter: 0,
            site: 0,
            phases_per_iter: 1,
            homes: Vec::new(),
            versions: Vec::new(),
            copysets: FastMap::default(),
            last_write_epoch: Vec::new(),
            last_writer: Vec::new(),
            iter_writers: FastMap::default(),
            iter_write_counts: FastMap::default(),
            migrated: false,
            od_mode: OdMode::Learning,
            od_revert_pending: false,
            bar_deliveries: BarDeliveries::default(),
            measuring: false,
            last_reduction: Vec::new(),
            reduce_mem: None,
            distributed: false,
            check: None,
            sched,
            exploring: false,
            pruned: false,
            trace_hash: 0,
            migration_pending: false,
            pool: BufPool::new(),
            cfg,
        }
    }

    /// Install a decision scheduler (shared with the network). Install
    /// before [`Cluster::distribute`] so every post-setup decision flows
    /// through it; the replaced default scheduler's RNG stream is
    /// abandoned whole, not resumed.
    pub fn install_scheduler(&mut self, sched: SharedScheduler) {
        assert!(!self.distributed, "install scheduler before distribute()");
        self.exploring = sched.borrow().exploring();
        self.net.set_scheduler(Rc::clone(&sched));
        self.sched = sched;
    }

    /// Install a checking sink. Install before setup to observe the
    /// initial-image writes; the sink then receives every access, barrier,
    /// and protocol event until removed.
    pub fn install_check_sink(&mut self, sink: Box<dyn CheckSink>) {
        self.check = Some(sink);
    }

    /// Remove and return the installed checking sink, if any.
    pub fn take_check_sink(&mut self) -> Option<Box<dyn CheckSink>> {
        self.check.take()
    }

    /// Forward one event to the installed sink, if any. Exploration also
    /// folds every event into the running trace hash (see `drive::hash`).
    #[inline]
    pub(crate) fn emit(&mut self, ev: CheckEvent<'_>) {
        if self.exploring {
            self.trace_hash = crate::drive::hash::fold_event(self.trace_hash, &ev);
        }
        if let Some(sink) = self.check.as_mut() {
            sink.on_event(ev);
        }
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// True once an exploring scheduler has pruned this execution; the
    /// cluster's state is then unspecified until restored or discarded.
    pub fn pruned(&self) -> bool {
        self.pruned
    }

    /// The running fold over every check event emitted while exploring
    /// (zero outside exploration). Two executions with equal trace hashes
    /// emitted bit-identical event streams — the equivalence oracle the
    /// checkpoint-restore DFS debug-asserts against.
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }

    /// Current iteration of the time-step loop.
    pub fn cur_iter(&self) -> usize {
        self.iter
    }

    /// Current phase site within the iteration.
    pub fn cur_site(&self) -> usize {
        self.site
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Protocol statistics for the current measurement window.
    ///
    /// The network counters live in the network layer; this snapshot merges
    /// them in (use this rather than field access when reporting live).
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats.clone();
        s.net = self.net.stats().clone();
        s
    }

    /// Diffs currently retained across all processes (homeless protocols
    /// hold them until GC; home-based protocols drop them within the
    /// barrier, so this is 0 for them between barriers).
    pub fn retained_diffs(&self) -> usize {
        self.procs.iter().map(|p| p.lmw.retained_diffs()).sum()
    }

    /// True while an overdrive protocol is running trap-free.
    pub fn overdrive_engaged(&self) -> bool {
        self.od_mode == OdMode::Overdrive
    }

    // ------------------------------------------------------------------
    // Manual driving (alternative to the DsmApp runner)
    // ------------------------------------------------------------------

    /// Allocation/initialization context; use before [`Cluster::distribute`].
    pub fn setup_ctx(&mut self) -> crate::drive::ctx::SetupCtx<'_> {
        crate::drive::ctx::SetupCtx { cl: self }
    }

    /// Execution context for process `pid` (one phase body at a time;
    /// separate the epochs with [`Cluster::barrier_app`]).
    pub fn exec_ctx(&mut self, pid: usize) -> crate::drive::ctx::ExecCtx<'_> {
        assert!(pid < self.nprocs(), "no process {pid}");
        crate::drive::ctx::ExecCtx { cl: self, pid }
    }

    /// Uncharged snapshot-read context for verification.
    pub fn check_ctx(&self) -> crate::drive::ctx::CheckCtx<'_> {
        crate::drive::ctx::CheckCtx { cl: self }
    }

    /// Declare the number of barrier phases per iteration (the overdrive
    /// protocols predict per phase site). The [`crate::drive::app::run_app`]
    /// runner sets this from the application automatically.
    pub fn set_phases_per_iter(&mut self, phases: usize) {
        self.phases_per_iter = phases.max(1);
    }

    /// Current page-size granularity.
    #[inline]
    pub(crate) fn page_size(&self) -> usize {
        self.cfg.sim.page_size
    }

    // ------------------------------------------------------------------
    // Setup and distribution
    // ------------------------------------------------------------------

    /// Grow per-page tables and the image to the current segment size.
    pub(crate) fn grow_tables(&mut self) {
        let n = self.seg.npages();
        let ps = self.page_size();
        while self.image.len() < n {
            self.image.push(PageBuf::zeroed(ps));
        }
        self.homes.resize(n, 0);
        self.versions.resize(n, 1);
        // copysets / iter_writers / iter_write_counts are sparse maps:
        // entries appear lazily on first sharing, never here.
        self.last_write_epoch.resize(n, 0);
        self.last_writer.resize(n, 0);
        for p in &mut self.procs {
            p.store.ensure_pages(n);
        }
    }

    /// Finish setup: freeze the initial image as the distributed state.
    ///
    /// Every process logically receives a valid read-only copy of every
    /// initialized page (the paper excludes startup distribution from its
    /// measurements, and so do we — frames materialize lazily from the
    /// image on first touch).
    pub fn distribute(&mut self) {
        assert!(!self.distributed, "distribute() called twice");
        self.grow_tables();
        self.distributed = true;
    }

    /// Begin the measurement window (the paper starts timing "only after
    /// the applications have reached a steady state").
    pub fn start_measurement(&mut self) {
        for p in &mut self.procs {
            p.clock.reset_measurement();
        }
        self.net.reset_stats();
        self.stats = RunStats::default();
        self.measuring = true;
    }

    /// Produce the report for the current measurement window.
    pub fn report(&self, app: &str, checksum: f64) -> RunReport {
        let mut stats = self.stats.clone();
        stats.net = self.net.stats().clone();
        RunReport {
            app: app.to_string(),
            protocol: self.cfg.protocol,
            nprocs: self.nprocs(),
            per_proc: self.procs.iter().map(|p| p.clock.breakdown()).collect(),
            elapsed: self
                .procs
                .iter()
                .map(|p| p.clock.measured())
                .max()
                .unwrap_or(Time::ZERO),
            segment_pages: self.seg.npages(),
            stats,
            checksum,
            seq_elapsed: None,
        }
    }

    // ------------------------------------------------------------------
    // Charging helpers
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn charge(&mut self, pid: usize, cat: Category, t: Time) {
        self.procs[pid].clock.advance(cat, t);
    }

    /// True when data traffic rides the one-sided RDMA backend. Protocol
    /// code branches on this for the eager/lazy diff-seal split; sync
    /// traffic is pinned two-sided regardless.
    #[inline]
    pub(crate) fn one_sided(&self) -> bool {
        self.cfg.sim.transport == dsm_sim::transport::TransportKind::OneSided
    }

    /// Charge one `mprotect` with the stress multiplier and count it.
    pub(crate) fn charge_mprotect(&mut self, pid: usize) {
        let base = Time::from_ns(self.cfg.sim.costs.mprotect_ns);
        let ops = self.procs[pid].protect_ops_epoch;
        let cost = self
            .cfg
            .sim
            .stress
            .mprotect_cost(base, ops, self.seg.npages());
        self.procs[pid].protect_ops_epoch += 1;
        self.stats.mprotects += 1;
        self.charge(pid, Category::Os, cost);
    }

    /// Charge one segv delivery and count it.
    pub(crate) fn charge_segv(&mut self, pid: usize) {
        self.stats.segvs += 1;
        let t = Time::from_ns(self.cfg.sim.costs.segv_ns);
        self.charge(pid, Category::Os, t);
    }

    /// Transition `page`'s protection for `pid`, charging an `mprotect`
    /// only when the protection actually changes.
    pub(crate) fn set_prot(&mut self, pid: usize, page: PageId, prot: Protection) {
        let old = self.procs[pid].store.set_protection(page, prot);
        if old != prot {
            self.charge_mprotect(pid);
        }
    }

    /// Two distinct processes, mutably.
    pub(crate) fn pair_mut(procs: &mut [Proc], a: usize, b: usize) -> (&mut Proc, &mut Proc) {
        assert_ne!(a, b);
        if a < b {
            let (lo, hi) = procs.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = procs.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    // ------------------------------------------------------------------
    // The access path
    // ------------------------------------------------------------------

    /// Make `[addr, addr+bytes)` accessible to `pid`, faulting as needed.
    pub(crate) fn ensure_access(&mut self, pid: usize, addr: usize, bytes: usize, write: bool) {
        debug_assert!(bytes > 0);
        let shift = self.page_size().trailing_zeros();
        let first = addr >> shift;
        let last = (addr + bytes - 1) >> shift;
        for pg in first..=last {
            self.ensure_page(pid, PageId(pg as u32), write);
        }
    }

    fn ensure_page(&mut self, pid: usize, page: PageId, write: bool) {
        debug_assert!(self.distributed, "access before distribute()");
        self.materialize_pristine(pid, page);
        let mut guard = 0;
        while let Some(kind) = self.procs[pid].store.check(page, write) {
            self.handle_fault(pid, page, kind);
            guard += 1;
            assert!(guard <= 3, "fault handler made no progress on {page:?}");
        }
    }

    /// First touch of a page by this process: hand it the initial
    /// distributed copy. Valid only if the page is still at its initial
    /// version; otherwise the frame materializes stale-invalid and the
    /// normal fault path brings it current.
    pub(crate) fn materialize_pristine(&mut self, pid: usize, page: PageId) {
        if self.procs[pid].store.frame(page).is_some() {
            return;
        }
        let valid = match self.cfg.protocol {
            ProtocolKind::Seq => true,
            p if p.is_lmw() => self.last_write_epoch[page.index()] == 0,
            _ => self.versions[page.index()] == 1,
        };
        let image = &self.image[page.index()];
        let f = self.procs[pid].store.frame_mut(page);
        f.fill_from(image);
        f.set_prot(if valid {
            Protection::Read
        } else {
            Protection::Invalid
        });
        f.set_version_seen(1);
        // Acquiring a cached copy makes this process part of the page's
        // copyset ("bitmaps that specify which processors cache a given
        // page"); the home-based update protocols push to it from now on.
        if self.cfg.protocol.is_bar() && self.cfg.protocol.is_update() {
            self.copyset_mut(page).insert(pid);
        }
    }

    /// The copyset of `page` (empty if no process has ever cached it).
    #[inline]
    pub(crate) fn copyset(&self, page: PageId) -> &CopySet {
        static EMPTY: CopySet = CopySet::EMPTY;
        self.copysets.get(&page.0).unwrap_or(&EMPTY)
    }

    /// The copyset of `page`, materializing its (sparse) entry on first
    /// sharing.
    #[inline]
    pub(crate) fn copyset_mut(&mut self, page: PageId) -> &mut CopySet {
        self.copysets.entry(page.0).or_default()
    }

    fn handle_fault(&mut self, pid: usize, page: PageId, kind: FaultKind) {
        match self.cfg.protocol {
            ProtocolKind::Seq => {
                // Null protocol: everything is always accessible, free.
                self.procs[pid]
                    .store
                    .set_protection(page, Protection::ReadWrite);
            }
            p if p.is_lmw() => self.lmw_fault(pid, page, kind),
            _ => self.bar_fault(pid, page, kind),
        }
    }

    // ------------------------------------------------------------------
    // Typed element and byte-range access (used by the handles in `mem`)
    // ------------------------------------------------------------------

    /// Developer tracing: set `DSM_WATCH=<byte addr>` (debug builds only)
    /// to log every access overlapping that address with the resident
    /// value — invaluable for differential protocol debugging.
    #[cfg(debug_assertions)]
    pub(crate) fn watch_hit(&self, pid: usize, addr: usize, len: usize, what: &str) {
        static WATCH: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        let target =
            WATCH.get_or_init(|| std::env::var("DSM_WATCH").ok().and_then(|w| w.parse().ok()));
        if let Some(target) = *target {
            if addr <= target && target < addr + len {
                let ps = self.page_size();
                let page = PageId::containing(target, ps);
                let off = PageId::offset(target, ps);
                let val = self.procs[pid].store.frame(page).map(|f| {
                    f64::from_ne_bytes(f.data().bytes()[off..off + 8].try_into().unwrap())
                });
                eprintln!("[watch] {what} pid={pid} epoch={} val={val:?}", self.epoch);
            }
        }
    }

    #[cfg(not(debug_assertions))]
    pub(crate) fn watch_hit(&self, _pid: usize, _addr: usize, _len: usize, _what: &str) {}

    pub(crate) fn read_scalar<T: Pod>(&mut self, pid: usize, addr: usize) -> T {
        let sz = core::mem::size_of::<T>();
        debug_assert!(
            addr.is_multiple_of(sz),
            "scalar access must be naturally aligned (addr {addr}, size {sz})"
        );
        self.ensure_access(pid, addr, sz, false);
        let ps = self.page_size();
        let page = PageId::containing(addr, ps);
        let off = PageId::offset(addr, ps);
        let f = self.procs[pid]
            .store
            .frame(page)
            .expect("faulted page present");
        let v = f.data().typed::<T>(off..off + sz)[0];
        self.emit(CheckEvent::Read {
            pid,
            addr,
            data: as_bytes(core::slice::from_ref(&v)),
        });
        v
    }

    pub(crate) fn write_scalar<T: Pod>(&mut self, pid: usize, addr: usize, v: T) {
        let sz = core::mem::size_of::<T>();
        debug_assert!(addr.is_multiple_of(sz));
        self.ensure_access(pid, addr, sz, true);
        let ps = self.page_size();
        let page = PageId::containing(addr, ps);
        let off = PageId::offset(addr, ps);
        self.procs[pid]
            .store
            .frame_mut(page)
            .write_at(off, as_bytes(core::slice::from_ref(&v)));
        self.emit(CheckEvent::Write {
            pid,
            addr,
            data: as_bytes(core::slice::from_ref(&v)),
        });
    }

    /// Copy `out.len()` bytes starting at `addr` into `out`.
    pub(crate) fn read_bytes(&mut self, pid: usize, addr: usize, out: &mut [u8]) {
        if out.is_empty() {
            return;
        }
        self.ensure_access(pid, addr, out.len(), false);
        self.watch_hit(pid, addr, out.len(), "read ");
        let ps = self.page_size();
        let mut done = 0;
        while done < out.len() {
            let a = addr + done;
            let page = PageId::containing(a, ps);
            let off = PageId::offset(a, ps);
            let n = (ps - off).min(out.len() - done);
            let f = self.procs[pid]
                .store
                .frame(page)
                .expect("faulted page present");
            out[done..done + n].copy_from_slice(&f.data().bytes()[off..off + n]);
            done += n;
        }
        self.emit(CheckEvent::Read {
            pid,
            addr,
            data: out,
        });
    }

    /// Copy `src` into shared memory starting at `addr`.
    pub(crate) fn write_bytes(&mut self, pid: usize, addr: usize, src: &[u8]) {
        if src.is_empty() {
            return;
        }
        self.ensure_access(pid, addr, src.len(), true);
        let ps = self.page_size();
        let mut done = 0;
        while done < src.len() {
            let a = addr + done;
            let page = PageId::containing(a, ps);
            let off = PageId::offset(a, ps);
            let n = (ps - off).min(src.len() - done);
            self.procs[pid]
                .store
                .frame_mut(page)
                .write_at(off, &src[done..done + n]);
            done += n;
        }
        self.watch_hit(pid, addr, src.len(), "write");
        self.emit(CheckEvent::Write {
            pid,
            addr,
            data: src,
        });
    }

    /// Setup-time write into the golden image (uncharged, pre-distribution).
    pub(crate) fn write_image_bytes(&mut self, addr: usize, src: &[u8]) {
        assert!(!self.distributed, "image writes only before distribute()");
        self.grow_tables();
        let ps = self.page_size();
        let mut done = 0;
        while done < src.len() {
            let a = addr + done;
            let page = a / ps;
            let off = a % ps;
            let n = (ps - off).min(src.len() - done);
            self.image[page].bytes_mut()[off..off + n].copy_from_slice(&src[done..done + n]);
            done += n;
        }
        self.emit(CheckEvent::ImageWrite { addr, data: src });
    }

    // ------------------------------------------------------------------
    // Uncharged snapshot reads (correctness checking)
    // ------------------------------------------------------------------

    /// Reconstruct the globally current contents of `page` without charging
    /// any cost — used by result verification after a run.
    pub(crate) fn snapshot_page(&self, page: PageId) -> PageBuf {
        match self.cfg.protocol {
            ProtocolKind::Seq => self.procs[0]
                .store
                .frame(page)
                .map_or_else(|| self.image[page.index()].clone(), |f| f.data().clone()),
            p if p.is_lmw() => self.lmw_snapshot_page(page),
            _ => {
                // Home-based: the home copy is current after the last barrier.
                let home = self.homes[page.index()];
                self.procs[home]
                    .store
                    .frame(page)
                    .map_or_else(|| self.image[page.index()].clone(), |f| f.data().clone())
            }
        }
    }

    /// Uncharged byte-range snapshot read spanning pages.
    pub(crate) fn snapshot_bytes(&self, addr: usize, out: &mut [u8]) {
        let ps = self.page_size();
        let mut done = 0;
        while done < out.len() {
            let a = addr + done;
            let page = PageId::containing(a, ps);
            let off = PageId::offset(a, ps);
            let n = (ps - off).min(out.len() - done);
            let buf = self.snapshot_page(page);
            out[done..done + n].copy_from_slice(&buf.bytes()[off..off + n]);
            done += n;
        }
    }
}
