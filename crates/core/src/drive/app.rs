//! The application trait and runner.
//!
//! Applications are barrier-phase structured: an iteration is a fixed
//! sequence of phases, each ending in a barrier (optionally a reduction
//! barrier). The runner executes each phase body once per process — valid
//! under LRC for data-race-free programs — then drives the protocol
//! barrier.

use crate::check::CheckSink;
use crate::config::RunConfig;
use crate::drive::cluster::Cluster;
use crate::drive::ctx::{CheckCtx, ExecCtx, SetupCtx};
use crate::drive::reduce::ReduceOp;
use crate::drive::stats::RunReport;

/// How a phase ends.
#[derive(Clone, Debug, PartialEq)]
pub enum PhaseEnd {
    /// Plain barrier.
    Barrier,
    /// Reduction barrier carrying this process's contributions; the result
    /// is available next phase via [`ExecCtx::reduction`].
    Reduce(ReduceOp, Vec<f64>),
}

/// A barrier-phase structured shared-memory application.
pub trait DsmApp {
    /// Short name (Table 1 row label).
    fn name(&self) -> &'static str;

    /// Barrier phases per iteration.
    fn phases(&self) -> usize;

    /// Total iterations of the time-step loop (including warmup).
    fn iters(&self) -> usize;

    /// Allocate and initialize shared data.
    fn setup(&mut self, s: &mut SetupCtx<'_>);

    /// Run one phase body for the process in `ctx`. Every process of an
    /// epoch must return the same `PhaseEnd` variant (and reduce op).
    fn phase(&mut self, ctx: &mut ExecCtx<'_>, iter: usize, site: usize) -> PhaseEnd;

    /// Produce a result checksum from the final shared state; must be
    /// protocol-independent for a correct protocol.
    fn check(&self, c: &CheckCtx<'_>) -> f64;

    /// Serialize application-side mutable state that lives *outside* the
    /// shared segment (recorded residuals, private per-iteration buffers)
    /// for a snapshot. Apps whose only mutable state is shared memory keep
    /// the default no-op.
    fn save_state(&self, _w: &mut dsm_sim::SnapWriter) {}

    /// Restore a [`DsmApp::save_state`] capture.
    fn load_state(&mut self, _r: &mut dsm_sim::SnapReader<'_>) {}
}

/// Execute `app` under `cfg` and report statistics, time breakdown, and the
/// result checksum.
pub fn run_app<A: DsmApp + ?Sized>(app: &mut A, cfg: RunConfig) -> RunReport {
    run_app_inner(app, cfg, None, None)
}

/// Execute `app` under `cfg` with a checking sink installed for the whole
/// run — before setup, so the sink observes the initial-image writes.
///
/// The virtual-time result is identical to [`run_app`]: the sink only
/// observes, it is never charged. Checkers that need to report afterwards
/// should hand in a handle to shared state (see `dsm-check`).
pub fn run_app_checked<A: DsmApp + ?Sized>(
    app: &mut A,
    cfg: RunConfig,
    sink: Box<dyn CheckSink>,
) -> RunReport {
    run_app_inner(app, cfg, Some(sink), None)
}

/// Execute `app` under `cfg` with an explicit decision scheduler (and
/// optionally a checking sink) installed before setup. With the default
/// [`dsm_sim::VirtualTimeScheduler`] this is identical to [`run_app`];
/// `dsm-explore` passes an enumerating scheduler to drive one explored
/// schedule per call.
pub fn run_app_scheduled<A: DsmApp + ?Sized>(
    app: &mut A,
    cfg: RunConfig,
    sink: Option<Box<dyn CheckSink>>,
    sched: dsm_sim::SharedScheduler,
) -> RunReport {
    run_app_inner(app, cfg, sink, Some(sched))
}

fn run_app_inner<A: DsmApp + ?Sized>(
    app: &mut A,
    cfg: RunConfig,
    sink: Option<Box<dyn CheckSink>>,
    sched: Option<dsm_sim::SharedScheduler>,
) -> RunReport {
    let mut run = StepRun::new(app, cfg, sink, sched);
    while run.step() {}
    run.finish()
}

/// A run broken into externally-driven steps, one phase + barrier each.
///
/// The runner derives its position from the cluster's own `(iter, site)`
/// counters rather than loop variables, so a cluster restored from a
/// snapshot (`Cluster::restore_state`) resumes mid-run and executes
/// exactly the steps a from-scratch run would — this is what the explore
/// driver's checkpoint-restore DFS and the `travel` time-travel bench
/// build on.
pub struct StepRun<'a, A: DsmApp + ?Sized> {
    app: &'a mut A,
    cl: Cluster,
    total_iters: usize,
    warmup: usize,
}

impl<'a, A: DsmApp + ?Sized> StepRun<'a, A> {
    /// Set up `app` under `cfg` (scheduler and sink installed before
    /// setup, as [`run_app_scheduled`] does) and stop at the first step
    /// boundary: nothing has executed yet.
    pub fn new(
        app: &'a mut A,
        cfg: RunConfig,
        sink: Option<Box<dyn CheckSink>>,
        sched: Option<dsm_sim::SharedScheduler>,
    ) -> StepRun<'a, A> {
        let mut cl = Cluster::new(cfg);
        if let Some(sched) = sched {
            cl.install_scheduler(sched);
        }
        if let Some(sink) = sink {
            cl.install_check_sink(sink);
        }
        {
            let mut s = SetupCtx { cl: &mut cl };
            app.setup(&mut s);
        }
        cl.phases_per_iter = app.phases().max(1);
        cl.distribute();
        let total_iters = app.iters();
        let warmup = cl.config().warmup_iters.min(total_iters.saturating_sub(1));
        StepRun {
            app,
            cl,
            total_iters,
            warmup,
        }
    }

    /// True once every iteration has run (or the execution was pruned).
    pub fn done(&self) -> bool {
        self.cl.pruned() || self.cl.cur_iter() >= self.total_iters
    }

    /// Execute one phase body on every process plus the ending barrier.
    /// Returns false when there is nothing further to execute — run
    /// complete or execution pruned by an exploring scheduler.
    pub fn step(&mut self) -> bool {
        if self.done() {
            return false;
        }
        let iter = self.cl.cur_iter();
        let site = self.cl.cur_site();
        if site == 0 && iter == self.warmup {
            self.cl.start_measurement();
        }
        let nprocs = self.cl.nprocs();
        let mut ends: Vec<PhaseEnd> = Vec::with_capacity(nprocs);
        for pid in 0..nprocs {
            let mut ctx = ExecCtx {
                cl: &mut self.cl,
                pid,
            };
            ends.push(self.app.phase(&mut ctx, iter, site));
        }
        let reduce = coalesce_phase_ends(ends);
        self.cl.barrier_app(reduce);
        !self.done()
    }

    /// The cluster, e.g. for `state_hash` or snapshot encoding.
    pub fn cluster(&self) -> &Cluster {
        &self.cl
    }

    /// Mutable cluster access, e.g. for snapshot restore.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cl
    }

    /// The application (its `save_state`/`load_state` pair with the
    /// cluster's codec snapshots the whole run).
    pub fn app(&self) -> &A {
        self.app
    }

    /// Mutable application access.
    pub fn app_mut(&mut self) -> &mut A {
        self.app
    }

    /// Split borrow for snapshot restore: cluster and app together.
    pub fn cluster_and_app_mut(&mut self) -> (&mut Cluster, &mut A) {
        (&mut self.cl, self.app)
    }

    /// Compute the checksum and produce the report. Call only on a
    /// completed (not pruned) run.
    pub fn finish(self) -> RunReport {
        let checksum = {
            let c = CheckCtx { cl: &self.cl };
            self.app.check(&c)
        };
        self.cl.report(self.app.name(), checksum)
    }
}

/// Convenience: run `app` under `cfg` and attach a sequential baseline run
/// of `baseline_app` (a fresh instance of the same application).
pub fn run_app_with_baseline<A: DsmApp + ?Sized, B: DsmApp + ?Sized>(
    app: &mut A,
    baseline_app: &mut B,
    cfg: RunConfig,
) -> RunReport {
    let base_cfg = cfg.baseline();
    let base = run_app(baseline_app, base_cfg);
    let report = run_app(app, cfg);
    assert_eq!(
        base.checksum, report.checksum,
        "protocol run diverged from the sequential baseline"
    );
    report.with_baseline(base.elapsed)
}

fn coalesce_phase_ends(ends: Vec<PhaseEnd>) -> Option<(ReduceOp, Vec<Vec<f64>>)> {
    let mut op: Option<ReduceOp> = None;
    let mut contribs: Vec<Vec<f64>> = Vec::with_capacity(ends.len());
    let mut plain = 0usize;
    let n = ends.len();
    for e in ends {
        match e {
            PhaseEnd::Barrier => plain += 1,
            PhaseEnd::Reduce(o, v) => {
                match op {
                    None => op = Some(o),
                    Some(prev) => assert_eq!(prev, o, "processes disagree on reduce op"),
                }
                contribs.push(v);
            }
        }
    }
    match op {
        None => None,
        Some(o) => {
            assert_eq!(
                plain, 0,
                "all processes of an epoch must end it the same way ({plain} of {n} sent Barrier)"
            );
            Some((o, contribs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_all_barriers() {
        assert!(coalesce_phase_ends(vec![PhaseEnd::Barrier; 4]).is_none());
    }

    #[test]
    fn coalesce_reduce_collects_in_pid_order() {
        let ends = vec![
            PhaseEnd::Reduce(ReduceOp::Max, vec![1.0]),
            PhaseEnd::Reduce(ReduceOp::Max, vec![2.0]),
        ];
        let (op, c) = coalesce_phase_ends(ends).unwrap();
        assert_eq!(op, ReduceOp::Max);
        assert_eq!(c, vec![vec![1.0], vec![2.0]]);
    }

    #[test]
    #[should_panic(expected = "same way")]
    fn mixed_phase_ends_rejected() {
        coalesce_phase_ends(vec![
            PhaseEnd::Barrier,
            PhaseEnd::Reduce(ReduceOp::Sum, vec![1.0]),
        ]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mixed_ops_rejected() {
        coalesce_phase_ends(vec![
            PhaseEnd::Reduce(ReduceOp::Sum, vec![1.0]),
            PhaseEnd::Reduce(ReduceOp::Max, vec![1.0]),
        ]);
    }
}
