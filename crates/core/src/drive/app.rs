//! The application trait and runner.
//!
//! Applications are barrier-phase structured: an iteration is a fixed
//! sequence of phases, each ending in a barrier (optionally a reduction
//! barrier). The runner executes each phase body once per process — valid
//! under LRC for data-race-free programs — then drives the protocol
//! barrier.

use crate::check::CheckSink;
use crate::config::RunConfig;
use crate::drive::cluster::Cluster;
use crate::drive::ctx::{CheckCtx, ExecCtx, SetupCtx};
use crate::drive::reduce::ReduceOp;
use crate::drive::stats::RunReport;

/// How a phase ends.
#[derive(Clone, Debug, PartialEq)]
pub enum PhaseEnd {
    /// Plain barrier.
    Barrier,
    /// Reduction barrier carrying this process's contributions; the result
    /// is available next phase via [`ExecCtx::reduction`].
    Reduce(ReduceOp, Vec<f64>),
}

/// A barrier-phase structured shared-memory application.
pub trait DsmApp {
    /// Short name (Table 1 row label).
    fn name(&self) -> &'static str;

    /// Barrier phases per iteration.
    fn phases(&self) -> usize;

    /// Total iterations of the time-step loop (including warmup).
    fn iters(&self) -> usize;

    /// Allocate and initialize shared data.
    fn setup(&mut self, s: &mut SetupCtx<'_>);

    /// Run one phase body for the process in `ctx`. Every process of an
    /// epoch must return the same `PhaseEnd` variant (and reduce op).
    fn phase(&mut self, ctx: &mut ExecCtx<'_>, iter: usize, site: usize) -> PhaseEnd;

    /// Produce a result checksum from the final shared state; must be
    /// protocol-independent for a correct protocol.
    fn check(&self, c: &CheckCtx<'_>) -> f64;
}

/// Execute `app` under `cfg` and report statistics, time breakdown, and the
/// result checksum.
pub fn run_app<A: DsmApp + ?Sized>(app: &mut A, cfg: RunConfig) -> RunReport {
    run_app_inner(app, cfg, None, None)
}

/// Execute `app` under `cfg` with a checking sink installed for the whole
/// run — before setup, so the sink observes the initial-image writes.
///
/// The virtual-time result is identical to [`run_app`]: the sink only
/// observes, it is never charged. Checkers that need to report afterwards
/// should hand in a handle to shared state (see `dsm-check`).
pub fn run_app_checked<A: DsmApp + ?Sized>(
    app: &mut A,
    cfg: RunConfig,
    sink: Box<dyn CheckSink>,
) -> RunReport {
    run_app_inner(app, cfg, Some(sink), None)
}

/// Execute `app` under `cfg` with an explicit decision scheduler (and
/// optionally a checking sink) installed before setup. With the default
/// [`dsm_sim::VirtualTimeScheduler`] this is identical to [`run_app`];
/// `dsm-explore` passes an enumerating scheduler to drive one explored
/// schedule per call.
pub fn run_app_scheduled<A: DsmApp + ?Sized>(
    app: &mut A,
    cfg: RunConfig,
    sink: Option<Box<dyn CheckSink>>,
    sched: dsm_sim::SharedScheduler,
) -> RunReport {
    run_app_inner(app, cfg, sink, Some(sched))
}

fn run_app_inner<A: DsmApp + ?Sized>(
    app: &mut A,
    cfg: RunConfig,
    sink: Option<Box<dyn CheckSink>>,
    sched: Option<dsm_sim::SharedScheduler>,
) -> RunReport {
    let mut cl = Cluster::new(cfg);
    if let Some(sched) = sched {
        cl.install_scheduler(sched);
    }
    if let Some(sink) = sink {
        cl.install_check_sink(sink);
    }
    {
        let mut s = SetupCtx { cl: &mut cl };
        app.setup(&mut s);
    }
    cl.phases_per_iter = app.phases().max(1);
    cl.distribute();

    let total_iters = app.iters();
    let warmup = cl.config().warmup_iters.min(total_iters.saturating_sub(1));
    let nprocs = cl.nprocs();

    for iter in 0..total_iters {
        if iter == warmup {
            cl.start_measurement();
        }
        for site in 0..app.phases() {
            let mut ends: Vec<PhaseEnd> = Vec::with_capacity(nprocs);
            for pid in 0..nprocs {
                let mut ctx = ExecCtx { cl: &mut cl, pid };
                ends.push(app.phase(&mut ctx, iter, site));
            }
            let reduce = coalesce_phase_ends(ends);
            cl.barrier_app(reduce);
        }
    }

    let checksum = {
        let c = CheckCtx { cl: &cl };
        app.check(&c)
    };
    cl.report(app.name(), checksum)
}

/// Convenience: run `app` under `cfg` and attach a sequential baseline run
/// of `baseline_app` (a fresh instance of the same application).
pub fn run_app_with_baseline<A: DsmApp + ?Sized, B: DsmApp + ?Sized>(
    app: &mut A,
    baseline_app: &mut B,
    cfg: RunConfig,
) -> RunReport {
    let base_cfg = cfg.baseline();
    let base = run_app(baseline_app, base_cfg);
    let report = run_app(app, cfg);
    assert_eq!(
        base.checksum, report.checksum,
        "protocol run diverged from the sequential baseline"
    );
    report.with_baseline(base.elapsed)
}

fn coalesce_phase_ends(ends: Vec<PhaseEnd>) -> Option<(ReduceOp, Vec<Vec<f64>>)> {
    let mut op: Option<ReduceOp> = None;
    let mut contribs: Vec<Vec<f64>> = Vec::with_capacity(ends.len());
    let mut plain = 0usize;
    let n = ends.len();
    for e in ends {
        match e {
            PhaseEnd::Barrier => plain += 1,
            PhaseEnd::Reduce(o, v) => {
                match op {
                    None => op = Some(o),
                    Some(prev) => assert_eq!(prev, o, "processes disagree on reduce op"),
                }
                contribs.push(v);
            }
        }
    }
    match op {
        None => None,
        Some(o) => {
            assert_eq!(
                plain, 0,
                "all processes of an epoch must end it the same way ({plain} of {n} sent Barrier)"
            );
            Some((o, contribs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_all_barriers() {
        assert!(coalesce_phase_ends(vec![PhaseEnd::Barrier; 4]).is_none());
    }

    #[test]
    fn coalesce_reduce_collects_in_pid_order() {
        let ends = vec![
            PhaseEnd::Reduce(ReduceOp::Max, vec![1.0]),
            PhaseEnd::Reduce(ReduceOp::Max, vec![2.0]),
        ];
        let (op, c) = coalesce_phase_ends(ends).unwrap();
        assert_eq!(op, ReduceOp::Max);
        assert_eq!(c, vec![vec![1.0], vec![2.0]]);
    }

    #[test]
    #[should_panic(expected = "same way")]
    fn mixed_phase_ends_rejected() {
        coalesce_phase_ends(vec![
            PhaseEnd::Barrier,
            PhaseEnd::Reduce(ReduceOp::Sum, vec![1.0]),
        ]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mixed_ops_rejected() {
        coalesce_phase_ends(vec![
            PhaseEnd::Reduce(ReduceOp::Sum, vec![1.0]),
            PhaseEnd::Reduce(ReduceOp::Max, vec![1.0]),
        ]);
    }
}
