//! The cluster driver: process state, the fault path, the barrier engine,
//! reductions, the application trait/runner, and run statistics.

pub mod app;
pub mod barrier;
pub mod cluster;
pub mod ctx;
pub mod hash;
pub mod reduce;
pub mod snap;
pub mod stats;
