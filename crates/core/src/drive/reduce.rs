//! Reductions.
//!
//! The bar protocols have "explicit support for reductions" (§2.2.1):
//! contributions ride on barrier arrival messages, the master combines, and
//! the result rides on the release. The homeless protocols emulate
//! reductions through shared memory, the way SUIF-generated code would: a
//! shared slot array (one multi-writer page), an extra barrier, a serial
//! combine by process 0, and a second barrier — generating exactly the kind
//! of diff/miss traffic Table 1 shows for the reduction-heavy codes.

use dsm_sim::{Category, Time};

use crate::drive::cluster::Cluster;
use crate::mem::SharedArray;

/// Associative combining operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    /// Short name for reports and the checking event stream.
    pub fn label(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        }
    }

    /// Identity element.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// Combine two values.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// Fold the per-process contribution vectors elementwise.
    pub fn fold(self, contribs: &[Vec<f64>]) -> Vec<f64> {
        let k = contribs.first().map_or(0, std::vec::Vec::len);
        let mut acc = vec![self.identity(); k];
        for c in contribs {
            assert_eq!(c.len(), k, "ragged reduction contributions");
            for (a, &v) in acc.iter_mut().zip(c) {
                *a = self.combine(*a, v);
            }
        }
        acc
    }
}

/// Hidden shared arrays backing reduction emulation on the homeless
/// protocols.
pub struct ReduceMem {
    pub slots: SharedArray<f64>,
    pub result: SharedArray<f64>,
    /// Slots per process.
    pub cap: usize,
}

impl Cluster {
    /// SUIF-style shared-memory reduction: slot writes, barrier, serial
    /// combine at process 0, barrier. The operations below go through the
    /// full protocol machinery, so the emulation pays real faults and diffs.
    pub(crate) fn reduce_emulated(&mut self, op: ReduceOp, contribs: &[Vec<f64>]) {
        let n = self.nprocs();
        assert_eq!(contribs.len(), n);
        let k = contribs[0].len();
        self.ensure_reduce_mem(k);
        let mem = self.reduce_mem.as_ref().expect("just ensured");
        let (slots, result, cap) = (mem.slots, mem.result, mem.cap);

        // Each process publishes its contributions.
        for (pid, c) in contribs.iter().enumerate() {
            for (j, &v) in c.iter().enumerate() {
                let addr = slots.addr_of(pid * cap + j);
                self.write_scalar::<f64>(pid, addr, v);
            }
        }
        self.barrier_core(None);
        if self.pruned {
            return;
        }

        // Process 0 combines serially and publishes the result.
        let combine = Time::from_ns(self.cfg.sim.costs.reduction_combine_ns);
        let mut acc = vec![op.identity(); k];
        for pid in 0..n {
            for (j, a) in acc.iter_mut().enumerate() {
                let v = self.read_scalar::<f64>(0, slots.addr_of(pid * cap + j));
                *a = op.combine(*a, v);
                self.charge(0, Category::App, combine);
            }
        }
        for (j, &v) in acc.iter().enumerate() {
            self.write_scalar::<f64>(0, result.addr_of(j), v);
        }
        self.barrier_core(None);
        if self.pruned {
            return;
        }

        // Everyone reads the result (faulting on process 0's page).
        for pid in 0..n {
            for (j, expected) in acc.iter().enumerate() {
                let v = self.read_scalar::<f64>(pid, result.addr_of(j));
                debug_assert_eq!(v, *expected);
                let _ = (v, expected);
            }
        }
        self.last_reduction = acc;
    }

    fn ensure_reduce_mem(&mut self, k: usize) {
        let n = self.nprocs();
        let need_new = match &self.reduce_mem {
            Some(m) => m.cap < k,
            None => true,
        };
        if need_new {
            // Shared allocation mid-run: the segment grows and the tables
            // resize; the fresh pages are pristine-valid everywhere.
            let base_slots = self.seg.alloc("__reduce_slots", n * k * 8);
            let base_result = self.seg.alloc("__reduce_result", k * 8);
            self.grow_tables();
            self.reduce_mem = Some(ReduceMem {
                slots: SharedArray::from_raw(base_slots, n * k),
                result: SharedArray::from_raw(base_result, k),
                cap: k,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Max.identity(), f64::NEG_INFINITY);
        assert_eq!(ReduceOp::Min.identity(), f64::INFINITY);
    }

    #[test]
    fn combine_semantics() {
        assert_eq!(ReduceOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.combine(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.combine(2.0, 3.0), 2.0);
    }

    #[test]
    fn fold_elementwise() {
        let contribs = vec![vec![1.0, 5.0], vec![3.0, 2.0], vec![2.0, 9.0]];
        assert_eq!(ReduceOp::Sum.fold(&contribs), vec![6.0, 16.0]);
        assert_eq!(ReduceOp::Max.fold(&contribs), vec![3.0, 9.0]);
        assert_eq!(ReduceOp::Min.fold(&contribs), vec![1.0, 2.0]);
    }

    #[test]
    fn fold_empty_is_empty() {
        assert!(ReduceOp::Sum.fold(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_contributions_rejected() {
        let _ = ReduceOp::Sum.fold(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
