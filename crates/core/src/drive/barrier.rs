//! The barrier engine.
//!
//! A barrier has five stages: per-process end-of-epoch consistency work
//! (diff creation, flushes), arrival messages at the master, master
//! processing (merge + optional native reduction), release messages, and
//! per-process post-release work (flush application, update application,
//! invalidation). Virtual time flows through the same stages: the release
//! time is the latest arrival plus master work, and everyone's wait is
//! charged to the `wait` bucket, exactly as the paper's Figure 3 accounts
//! it.

use dsm_net::ReliableKind;
use dsm_sim::{Category, Time};

use crate::check::CheckEvent;
use crate::config::ProtocolKind;
use crate::drive::cluster::Cluster;
use crate::drive::reduce::ReduceOp;
use crate::proto::bar::BUMP_WIRE_BYTES;
use crate::proto::notice::{WriteNotice, NOTICE_WIRE_BYTES};
use crate::proto::overdrive::OdMode;

impl Cluster {
    /// An application-level barrier ending the current phase, optionally
    /// carrying a reduction (per-process contribution vectors).
    pub fn barrier_app(&mut self, reduce: Option<(ReduceOp, Vec<Vec<f64>>)>) {
        assert!(self.distributed, "barrier before distribute()");
        let ending_site = self.site;
        let phases = self.phases_per_iter;
        let overdrive = self.cfg.protocol.is_overdrive();

        if overdrive {
            match self.od_mode {
                OdMode::Learning => self.od_record(ending_site),
                OdMode::Overdrive => {
                    if self.cfg.overdrive.validate && self.cfg.protocol == ProtocolKind::BarM {
                        self.od_validate_shadow(ending_site);
                    }
                }
                OdMode::Reverted => {}
            }
        }

        match reduce {
            Some((op, contribs)) if !self.cfg.protocol.native_reductions() => {
                // Homeless protocols: SUIF-style shared-memory emulation
                // (includes its own internal barriers).
                self.reduce_emulated(op, &contribs);
            }
            other => self.barrier_core(other),
        }
        if self.pruned {
            // Pruned mid-barrier: skip the remaining protocol work (the
            // panic-unwind path used to); state past here is unspecified.
            return;
        }

        if self.cfg.protocol.is_bar() {
            // The migration decision is ready at the end of the first
            // iteration; the default executes it immediately (today's
            // timing), while an exploring scheduler may defer it across
            // later barriers to probe migration-timing interleavings.
            let decision_ready = ending_site + 1 == phases && self.iter == 0;
            if !self.migrated && self.cfg.migration && (decision_ready || self.migration_pending) {
                let defer = self.exploring && {
                    let iter = self.iter;
                    self.sched.borrow_mut().defer_migration(iter)
                };
                self.migration_pending = defer;
                if !defer {
                    self.bar_migrate();
                }
            }
            if overdrive {
                if self.od_revert_pending && self.od_mode == OdMode::Overdrive {
                    self.od_do_revert();
                }
                if ending_site + 1 == phases {
                    self.od_iteration_boundary();
                }
                if self.od_mode == OdMode::Overdrive {
                    let next_site = (ending_site + 1) % phases;
                    self.od_arm(next_site);
                }
            }
        }
        if self.cfg.protocol.is_lmw() {
            self.lmw_maybe_gc();
        }

        self.site = (ending_site + 1) % phases;
        if self.site == 0 {
            self.iter += 1;
        }
    }

    /// One protocol barrier (no site bookkeeping — also used by the
    /// reduction emulation's internal barriers).
    pub(crate) fn barrier_core(&mut self, reduce: Option<(ReduceOp, Vec<Vec<f64>>)>) {
        self.stats.barriers += 1;

        if self.cfg.protocol == ProtocolKind::Seq {
            if let Some((op, contribs)) = reduce {
                self.emit(CheckEvent::Reduction {
                    op: op.label(),
                    len: contribs[0].len(),
                });
                self.last_reduction = op.fold(&contribs);
            }
            let epoch = self.epoch;
            self.emit(CheckEvent::BarrierArrive { pid: 0, epoch });
            self.emit(CheckEvent::BarrierRelease { epoch });
            self.epoch += 1;
            self.explore_barrier_checkpoint();
            return;
        }

        let n = self.nprocs();
        let master = 0usize;
        let is_lmw = self.cfg.protocol.is_lmw();
        let reprotect =
            !(self.cfg.protocol == ProtocolKind::BarM && self.od_mode == OdMode::Overdrive);

        // 1. End-of-epoch consistency work, in arrival order (the queueing
        //    order of the in-flight flushes; canonical `0..n` by default).
        let order = self.arrival_order(n);
        let mut merged_notices: Vec<WriteNotice> = Vec::new();
        let mut payloads = vec![0usize; n];
        for pid in order {
            payloads[pid] = if is_lmw {
                let notices = self.lmw_pre_barrier(pid);
                let bytes = notices.len() * NOTICE_WIRE_BYTES;
                merged_notices.extend(notices);
                bytes
            } else {
                self.bar_pre_barrier(pid, reprotect) * BUMP_WIRE_BYTES
            };
        }
        merged_notices.sort_by_key(|w| (w.epoch, w.page, w.writer));
        for n in &merged_notices {
            let i = n.page_id().index();
            if n.epoch >= self.last_write_epoch[i] {
                self.last_write_epoch[i] = n.epoch;
                self.last_writer[i] = n.writer;
            }
        }

        let red_k = reduce.as_ref().map_or(0, |(_, c)| c[0].len());
        let red_payload = red_k * 8;

        // 2. Arrivals.
        for pid in 0..n {
            let epoch = self.epoch;
            self.emit(CheckEvent::BarrierArrive { pid, epoch });
        }
        let mut land = self.procs[master].clock.now();
        for (pid, payload) in payloads.iter().enumerate().skip(1) {
            let sent_at = self.procs[pid].clock.now();
            let tr = self.net.send_reliable(
                pid,
                master,
                ReliableKind::BarrierArrive,
                payload + red_payload,
                sent_at,
            );
            self.charge(pid, Category::Os, tr.sender);
            land = land.max(sent_at + tr.sender + tr.wire);
            // Retransmission overhead delays the master's release: the
            // annex lands on the clock that ends up waiting.
            self.procs[master].clock.note_retrans(tr.retrans_wait);
            if tr.attempts > 1 {
                self.emit(CheckEvent::WireRetransmit {
                    src: pid,
                    dst: master,
                    attempts: tr.attempts,
                });
            }
            self.charge(master, Category::Sigio, tr.receiver);
        }
        self.procs[master].clock.wait_until(land);

        // 3. Master processing: merge + optional native reduction.
        let costs = &self.cfg.sim.costs;
        let mut master_work = costs.barrier_master_per_proc_ns * (n as u64 - 1);
        master_work += costs.write_notice_ns
            * if is_lmw {
                merged_notices.len() as u64
            } else {
                self.bar_deliveries.bumps.len() as u64
            };
        if red_k > 0 {
            master_work += costs.reduction_combine_ns * (n as u64) * red_k as u64;
        }
        self.charge(master, Category::Sigio, Time::from_ns(master_work));
        if let Some((op, contribs)) = reduce {
            self.emit(CheckEvent::Reduction {
                op: op.label(),
                len: contribs[0].len(),
            });
            self.last_reduction = op.fold(&contribs);
        }

        // 4. Releases.
        let release_payload = if is_lmw {
            merged_notices.len() * NOTICE_WIRE_BYTES
        } else {
            self.bar_deliveries.bumps.len() * BUMP_WIRE_BYTES
        } + red_payload;
        for pid in 1..n {
            let sent_at = self.procs[master].clock.now();
            let tr = self.net.send_reliable(
                master,
                pid,
                ReliableKind::BarrierRelease,
                release_payload,
                sent_at,
            );
            self.charge(master, Category::Os, tr.sender);
            let deliver_at = sent_at + tr.sender + tr.wire;
            // A retransmitted release stalls the released process, not the
            // master: annotate the waiter's clock.
            self.procs[pid].clock.note_retrans(tr.retrans_wait);
            if tr.attempts > 1 {
                self.emit(CheckEvent::WireRetransmit {
                    src: master,
                    dst: pid,
                    attempts: tr.attempts,
                });
            }
            self.procs[pid].clock.wait_until(deliver_at);
            self.charge(pid, Category::Os, tr.receiver);
        }

        // 5. Post-release consistency work.
        for pid in 0..n {
            if is_lmw {
                self.lmw_post_release(pid, &merged_notices);
            } else {
                self.bar_post_release(pid);
            }
            let local = Time::from_ns(self.cfg.sim.costs.barrier_local_ns);
            self.charge(pid, Category::Os, local);
            self.procs[pid].protect_ops_epoch = 0;
        }

        debug_assert!(self.bar_deliveries.home_flushes.is_empty());
        debug_assert!(self.bar_deliveries.bar_updates.is_empty());
        debug_assert!(self.bar_deliveries.lmw_updates.is_empty());
        self.bar_deliveries.bumps.clear();
        self.bar_deliveries.writer_bumps.clear();
        let epoch = self.epoch;
        self.emit(CheckEvent::BarrierRelease { epoch });
        self.epoch += 1;
        self.explore_barrier_checkpoint();
    }
}
