//! One-dimensional shared arrays.

use core::marker::PhantomData;

use dsm_vm::Pod;

/// A handle to a contiguous shared array of `T`.
///
/// Handles are plain `Copy` descriptors — all state lives in the cluster.
/// Element and range accessors take an [`crate::drive::ctx::ExecCtx`] and go
/// through the full protection-check/fault path.
// audit: leaf: a plain base/len descriptor — all element data lives in shared
// segment pages, snapshotted and hashed with the frames that hold them
#[derive(Debug)]
pub struct SharedArray<T: Pod> {
    base: usize,
    len: usize,
    _t: PhantomData<fn() -> T>,
}

// Manual impls: `derive` would bound them on `T: Clone/Copy`, and the
// PhantomData makes that unnecessary.
#[allow(clippy::expl_impl_clone_on_copy)]
impl<T: Pod> Clone for SharedArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for SharedArray<T> {}

impl<T: Pod> SharedArray<T> {
    /// Construct from a base byte address (must be `T`-aligned) and length.
    pub(crate) fn from_raw(base: usize, len: usize) -> Self {
        assert!(
            base.is_multiple_of(core::mem::align_of::<T>()),
            "misaligned array base"
        );
        SharedArray {
            base,
            len,
            _t: PhantomData,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base byte address in the shared segment.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Byte address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> usize {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + i * core::mem::size_of::<T>()
    }

    /// Byte size of the whole array.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.len * core::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_strided_by_element_size() {
        let a = SharedArray::<f64>::from_raw(8192, 100);
        assert_eq!(a.addr_of(0), 8192);
        assert_eq!(a.addr_of(3), 8192 + 24);
        assert_eq!(a.byte_len(), 800);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_addr_panics() {
        let a = SharedArray::<u32>::from_raw(0, 4);
        let _ = a.addr_of(4);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_base_rejected() {
        let _ = SharedArray::<f64>::from_raw(4, 1);
    }

    #[test]
    fn handles_are_copy() {
        let a = SharedArray::<f64>::from_raw(0, 8);
        let b = a;
        assert_eq!(a.base(), b.base());
    }
}
