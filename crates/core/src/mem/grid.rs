//! Two-dimensional shared grids with page-friendly row strides.
//!
//! Rows are padded so that a row never straddles a page boundary unless it
//! occupies whole pages, which gives the stencil applications the same
//! page-access pattern the paper's array-sliced codes have: a block-row
//! decomposition touches a clean band of pages, and neighbour rows shared
//! across a band boundary occupy a bounded number of pages.

use core::marker::PhantomData;

use dsm_vm::Pod;

/// A handle to a row-major 2-D shared grid of `T`.
// audit: leaf: a plain base/geometry descriptor — all element data lives in
// shared segment pages, snapshotted and hashed with the frames that hold them
#[derive(Debug)]
pub struct SharedGrid2<T: Pod> {
    base: usize,
    rows: usize,
    cols: usize,
    /// Row stride in elements (>= cols).
    stride: usize,
    _t: PhantomData<fn() -> T>,
}

// Manual impls: `derive` would bound them on `T: Clone/Copy`, and the
// PhantomData makes that unnecessary.
#[allow(clippy::expl_impl_clone_on_copy)]
impl<T: Pod> Clone for SharedGrid2<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for SharedGrid2<T> {}

/// Pick a stride (in elements) such that rows never straddle page
/// boundaries: either a power-of-two number of rows fits exactly in a page,
/// or a row occupies a whole number of pages.
///
/// Public so that static tooling (`dsm-plan`) can reproduce the exact
/// address layout [`SetupCtx::alloc_grid`](crate::drive::ctx::SetupCtx)
/// produces without allocating anything.
pub fn page_friendly_stride<T: Pod>(cols: usize, page_size: usize) -> usize {
    let esize = core::mem::size_of::<T>();
    let row_bytes = cols * esize;
    let padded = row_bytes.next_power_of_two();
    let stride_bytes = if padded <= page_size {
        padded
    } else {
        row_bytes.div_ceil(page_size) * page_size
    };
    debug_assert!(stride_bytes % esize == 0);
    stride_bytes / esize
}

impl<T: Pod> SharedGrid2<T> {
    pub(crate) fn from_raw(base: usize, rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols);
        assert!(
            base.is_multiple_of(core::mem::align_of::<T>()),
            "misaligned grid base"
        );
        SharedGrid2 {
            base,
            rows,
            cols,
            stride,
            _t: PhantomData,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride in elements.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Base byte address.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Total reserved bytes including padding.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.rows * self.stride * core::mem::size_of::<T>()
    }

    /// Byte address of element `(r, c)`.
    #[inline]
    pub fn addr_of(&self, r: usize, c: usize) -> usize {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        self.base + (r * self.stride + c) * core::mem::size_of::<T>()
    }

    /// Byte address of the start of row `r`.
    #[inline]
    pub fn row_addr(&self, r: usize) -> usize {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        self.base + r * self.stride * core::mem::size_of::<T>()
    }

    /// Byte length of the *used* part of a row.
    #[inline]
    pub fn row_bytes(&self) -> usize {
        self.cols * core::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_pads_to_power_of_two_within_page() {
        // 100 f64 = 800 B -> padded to 1024 B = 128 elements.
        assert_eq!(page_friendly_stride::<f64>(100, 8192), 128);
        // 512 f64 = 4096 B: exactly half a page.
        assert_eq!(page_friendly_stride::<f64>(512, 8192), 512);
        // 1024 f64 = 8192 B: exactly one page.
        assert_eq!(page_friendly_stride::<f64>(1024, 8192), 1024);
    }

    #[test]
    fn stride_rounds_to_whole_pages_when_large() {
        // 1500 f64 = 12000 B -> 2 pages = 16384 B = 2048 elements.
        assert_eq!(page_friendly_stride::<f64>(1500, 8192), 2048);
    }

    #[test]
    fn rows_never_straddle_pages() {
        for cols in [5usize, 63, 100, 512, 1000, 1024, 1500, 3000] {
            let stride = page_friendly_stride::<f64>(cols, 8192);
            let row_bytes = cols * 8;
            let stride_bytes = stride * 8;
            for r in 0..64 {
                let start = r * stride_bytes;
                let end = start + row_bytes - 1;
                if stride_bytes <= 8192 {
                    assert_eq!(start / 8192, end / 8192, "row {r} straddles (cols={cols})");
                } else {
                    assert_eq!(start % 8192, 0, "multi-page row must start page-aligned");
                }
            }
        }
    }

    #[test]
    fn addressing_uses_stride() {
        let g = SharedGrid2::<f64>::from_raw(8192, 4, 3, 128);
        assert_eq!(g.addr_of(0, 0), 8192);
        assert_eq!(g.addr_of(1, 0), 8192 + 128 * 8);
        assert_eq!(g.addr_of(1, 2), 8192 + 128 * 8 + 16);
        assert_eq!(g.row_addr(2), 8192 + 2 * 128 * 8);
        assert_eq!(g.row_bytes(), 24);
        assert_eq!(g.byte_len(), 4 * 128 * 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_bounds_checked() {
        let g = SharedGrid2::<f64>::from_raw(0, 4, 3, 128);
        let _ = g.addr_of(0, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_bounds_checked() {
        let g = SharedGrid2::<f64>::from_raw(0, 4, 3, 128);
        let _ = g.row_addr(4);
    }
}
