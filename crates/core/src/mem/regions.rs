//! Statically proven sub-page region certificates.
//!
//! The plan layer (crate `dsm-plan`) intersects every application's
//! per-process write bands with each page's footprint and emits a
//! [`RegionTable`]: one [`PageCert`] per shared page that is written at
//! all, classifying it and — when the proof obligations hold — carrying
//! per-writer span certificates. The region-granularity protocol `bar-r`
//! and the region-aware checker consume the table; `dsm-core` defines the
//! types so both sides (producer in `dsm-plan`, consumers in `dsm-core`
//! and `dsm-check`) agree on one vocabulary without a dependency cycle.
//!
//! The proof obligation, in Darcs-commutation form: two writers' deltas
//! commute iff their spans do not intersect. A page whose writers have
//! pairwise-disjoint store spans is *false-shared* — the page-granularity
//! protocols ship twins and diffs for it, yet no word is ever contended —
//! and every writer receives a commuting-writer certificate: its delta may
//! be captured without a twin (sole writer of each span ⇒ its local span
//! contents are globally freshest) and merged in any order.

/// Static sharing classification of one page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageClass {
    /// Exactly one process ever writes the page.
    Exclusive,
    /// Two or more writers with at least one overlapping word: deltas may
    /// not commute, no certificate — the protocol must keep twins.
    TrueShared,
    /// Two or more writers with pairwise-disjoint store spans: all deltas
    /// commute; every writer holds a certificate.
    FalseShared,
}

impl PageClass {
    /// Short label used by reports.
    pub fn label(self) -> &'static str {
        match self {
            PageClass::Exclusive => "exclusive",
            PageClass::TrueShared => "true-shared",
            PageClass::FalseShared => "false-shared",
        }
    }
}

/// One writer's proven footprint on one page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WriterRegions {
    /// The writing process.
    pub writer: u16,
    /// Sorted, disjoint, word-aligned `[start, end)` byte spans within the
    /// page: the union of every store band the plan lowers for this writer
    /// on this page, over all epochs. Dynamic dirty ranges must stay
    /// inside these spans (the certificate's grounding obligation).
    pub spans: Vec<(u32, u32)>,
    /// The processes whose *load* spans (over all epochs) intersect
    /// this writer's store spans — the only processes that can ever
    /// observe this writer's values. An update push to any process
    /// outside this set (and outside the home, which needs every delta)
    /// is provably wasted traffic.
    pub readers: crate::proto::CopySet,
}

impl WriterRegions {
    /// Total proven span bytes.
    pub fn span_bytes(&self) -> u64 {
        self.spans.iter().map(|&(s, e)| u64::from(e - s)).sum()
    }
}

/// One process's proven load footprint on one page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReaderLoads {
    /// The loading process.
    pub reader: u16,
    /// Sorted, disjoint, word-aligned `[start, end)` byte spans within
    /// the page: the union of every load band the plan lowers for this
    /// process on this page, over all epochs — an over-approximation of
    /// the words it can ever read.
    pub spans: Vec<(u32, u32)>,
}

/// The certificate for one page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PageCert {
    /// Page index within the shared segment.
    pub page: u32,
    /// Sharing classification.
    pub class: PageClass,
    /// Per-writer footprints, sorted by writer. Populated for every class
    /// (the prover knows the spans regardless); *certified* — usable by
    /// the protocol — only when [`PageCert::certified`] holds.
    pub writers: Vec<WriterRegions>,
    /// Per-process load footprints, sorted by reader — every process the
    /// plan shows loading any word of this page. On certified pages an
    /// update push to process `q` may be clipped to `q`'s load spans: the
    /// words outside them are provably never read by `q`, so shipping
    /// them is pure false-sharing traffic. The home is exempt — its copy
    /// is canonical and always receives the full delta.
    pub loads: Vec<ReaderLoads>,
}

impl PageCert {
    /// True when every writer's delta is proven to commute with every
    /// other's: the page is exclusive (one writer commutes trivially) or
    /// false-shared (pairwise-disjoint spans). Certified pages may be
    /// handled twin-free at region granularity.
    pub fn certified(&self) -> bool {
        matches!(self.class, PageClass::Exclusive | PageClass::FalseShared)
    }

    /// This page's footprint for `writer`, if it writes the page.
    pub fn writer(&self, writer: usize) -> Option<&WriterRegions> {
        self.writers
            .iter()
            .find(|w| usize::from(w.writer) == writer)
    }

    /// This page's proven load spans for `reader`, if it loads the page.
    pub fn loads_of(&self, reader: usize) -> Option<&[(u32, u32)]> {
        self.loads
            .iter()
            .find(|l| usize::from(l.reader) == reader)
            .map(|l| l.spans.as_slice())
    }
}

/// All page certificates for one (app, nprocs, scale) configuration,
/// sorted by page for binary-search lookup.
///
/// Constructed by `dsm-plan`'s false-sharing prover and carried into runs
/// via `RunConfig::regions`; pages without a certificate entry (never
/// written, or outside the analyzed segment) are handled at page
/// granularity exactly as under bar-u.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RegionTable {
    certs: Vec<PageCert>,
}

impl RegionTable {
    /// Build a table from per-page certificates. Sorts by page and checks
    /// the structural invariants every consumer relies on: unique pages,
    /// per-writer spans sorted / disjoint / word-aligned / non-empty, and
    /// writers sorted with no duplicates.
    pub fn new(mut certs: Vec<PageCert>) -> RegionTable {
        certs.sort_by_key(|c| c.page);
        for pair in certs.windows(2) {
            assert_ne!(pair[0].page, pair[1].page, "duplicate page certificate");
        }
        for c in &certs {
            for pair in c.writers.windows(2) {
                assert!(
                    pair[0].writer < pair[1].writer,
                    "page {}: writers unsorted or duplicated",
                    c.page
                );
            }
            for w in &c.writers {
                assert!(!w.spans.is_empty(), "page {}: writer without spans", c.page);
                check_spans(c.page, &w.spans);
            }
            for pair in c.loads.windows(2) {
                assert!(
                    pair[0].reader < pair[1].reader,
                    "page {}: readers unsorted or duplicated",
                    c.page
                );
            }
            for l in &c.loads {
                assert!(!l.spans.is_empty(), "page {}: reader without spans", c.page);
                check_spans(c.page, &l.spans);
            }
        }
        RegionTable { certs }
    }

    /// The certificate for `page`, if one was proven.
    pub fn cert(&self, page: u32) -> Option<&PageCert> {
        self.certs
            .binary_search_by_key(&page, |c| c.page)
            .ok()
            .map(|i| &self.certs[i])
    }

    /// All certificates, in page order.
    pub fn iter(&self) -> impl Iterator<Item = &PageCert> {
        self.certs.iter()
    }

    /// Number of certified (twin-free eligible) pages.
    pub fn certified_pages(&self) -> usize {
        self.certs.iter().filter(|c| c.certified()).count()
    }

    /// Number of page certificates.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// True when no page was analyzed.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }
}

/// Shared span-list invariant: sorted, disjoint, word-aligned, non-empty.
fn check_spans(page: u32, spans: &[(u32, u32)]) {
    let mut prev_end = 0u32;
    for (i, &(s, e)) in spans.iter().enumerate() {
        assert!(s < e, "page {page}: empty span");
        assert!(s % 8 == 0 && e % 8 == 0, "page {page}: unaligned span");
        assert!(
            i == 0 || s >= prev_end,
            "page {page}: spans unsorted or overlapping"
        );
        prev_end = e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::CopySet;

    fn table() -> RegionTable {
        RegionTable::new(vec![
            PageCert {
                page: 4,
                class: PageClass::FalseShared,
                writers: vec![
                    WriterRegions {
                        writer: 0,
                        spans: vec![(0, 64)],
                        readers: CopySet::single(1),
                    },
                    WriterRegions {
                        writer: 1,
                        spans: vec![(64, 128), (256, 264)],
                        readers: CopySet::single(0),
                    },
                ],
                loads: vec![
                    ReaderLoads {
                        reader: 0,
                        spans: vec![(64, 128)],
                    },
                    ReaderLoads {
                        reader: 1,
                        spans: vec![(0, 64)],
                    },
                ],
            },
            PageCert {
                page: 2,
                class: PageClass::TrueShared,
                writers: vec![WriterRegions {
                    writer: 0,
                    spans: vec![(0, 8)],
                    readers: (0..64).collect(),
                }],
                loads: vec![],
            },
        ])
    }

    #[test]
    fn lookup_is_sorted_binary_search() {
        let t = table();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cert(2).unwrap().class, PageClass::TrueShared);
        assert_eq!(t.cert(4).unwrap().class, PageClass::FalseShared);
        assert!(t.cert(3).is_none());
        assert_eq!(t.certified_pages(), 1);
    }

    #[test]
    fn cert_predicates() {
        let t = table();
        let c = t.cert(4).unwrap();
        assert!(c.certified());
        assert!(!t.cert(2).unwrap().certified());
        assert_eq!(c.writer(1).unwrap().span_bytes(), 72);
        assert!(c.writer(5).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate page")]
    fn duplicate_pages_rejected() {
        let c = PageCert {
            page: 1,
            class: PageClass::Exclusive,
            writers: vec![WriterRegions {
                writer: 0,
                spans: vec![(0, 8)],
                readers: CopySet::EMPTY,
            }],
            loads: vec![],
        };
        let _ = RegionTable::new(vec![c.clone(), c]);
    }

    #[test]
    #[should_panic(expected = "unaligned span")]
    fn unaligned_spans_rejected() {
        let _ = RegionTable::new(vec![PageCert {
            page: 0,
            class: PageClass::Exclusive,
            writers: vec![WriterRegions {
                writer: 0,
                spans: vec![(0, 12)],
                readers: CopySet::EMPTY,
            }],
            loads: vec![],
        }]);
    }

    #[test]
    #[should_panic(expected = "unsorted or overlapping")]
    fn overlapping_spans_rejected() {
        let _ = RegionTable::new(vec![PageCert {
            page: 0,
            class: PageClass::Exclusive,
            writers: vec![WriterRegions {
                writer: 0,
                spans: vec![(0, 16), (8, 24)],
                readers: CopySet::EMPTY,
            }],
            loads: vec![],
        }]);
    }
}
