//! The shared-memory API.
//!
//! Applications never touch page frames directly; they hold lightweight
//! `Copy` handles describing where their data lives in the shared segment
//! and access elements or rows through an [`crate::drive::ctx::ExecCtx`],
//! which performs the protection check → fault → protocol-service path of a
//! real DSM on every access.

pub mod array;
pub mod grid;
pub mod regions;
pub mod segment;

pub use array::SharedArray;
pub use grid::{page_friendly_stride, SharedGrid2};
pub use regions::{PageCert, PageClass, ReaderLoads, RegionTable, WriterRegions};
pub use segment::{Alloc, SharedSegment};

use dsm_vm::Pod;

/// A single shared scalar, allocated on its own page.
///
/// Implemented as a one-element [`SharedArray`]; convenient for flags and
/// residuals.
#[derive(Clone, Copy, Debug)]
pub struct SharedScalar<T: Pod> {
    pub(crate) arr: SharedArray<T>,
}

impl<T: Pod> SharedScalar<T> {
    pub(crate) fn new(arr: SharedArray<T>) -> Self {
        SharedScalar { arr }
    }

    /// Byte address within the shared segment.
    pub fn addr(&self) -> usize {
        self.arr.base()
    }

    /// Underlying one-element array handle.
    pub fn as_array(&self) -> SharedArray<T> {
        self.arr
    }
}
