//! Page-granular allocation within the shared segment.
//!
//! Every allocation starts on a fresh page: distinct arrays never share a
//! page, mirroring how a DSM runtime lays out a shared segment so that
//! false sharing happens *within* arrays (where the protocols must handle
//! it) and not *between* unrelated objects.

use dsm_vm::PageId;

/// The shared address-space map: a bump allocator over pages.
#[derive(Debug)]
pub struct SharedSegment {
    page_size: usize,
    next_page: usize,
    allocs: Vec<Alloc>,
}

/// One named allocation, for diagnostics.
#[derive(Clone, Debug)]
pub struct Alloc {
    pub name: String,
    pub base: usize,
    pub bytes: usize,
}

impl SharedSegment {
    pub fn new(page_size: usize) -> SharedSegment {
        assert!(page_size.is_power_of_two());
        SharedSegment {
            page_size,
            next_page: 0,
            allocs: Vec::new(),
        }
    }

    /// Reserve `bytes` bytes starting on a fresh page; returns the base
    /// byte address.
    pub fn alloc(&mut self, name: &str, bytes: usize) -> usize {
        assert!(bytes > 0, "zero-sized shared allocation");
        let base = self.next_page * self.page_size;
        let pages = bytes.div_ceil(self.page_size);
        self.next_page += pages;
        self.allocs.push(Alloc {
            name: name.to_string(),
            base,
            bytes,
        });
        base
    }

    /// Total pages in the segment so far.
    pub fn npages(&self) -> usize {
        self.next_page
    }

    /// Total reserved bytes (page-rounded).
    pub fn reserved_bytes(&self) -> usize {
        self.next_page * self.page_size
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The allocation table.
    pub fn allocs(&self) -> &[Alloc] {
        &self.allocs
    }

    /// The page containing byte address `addr`.
    pub fn page_of(&self, addr: usize) -> PageId {
        PageId::containing(addr, self.page_size)
    }

    /// Encode the allocation map for a snapshot. `page_size` is
    /// construction-time configuration and is not captured.
    pub fn encode_state(&self, w: &mut dsm_sim::SnapWriter) {
        w.usize(self.next_page);
        w.usize(self.allocs.len());
        for a in &self.allocs {
            w.bytes(a.name.as_bytes());
            w.usize(a.base);
            w.usize(a.bytes);
        }
    }

    /// Restore an [`SharedSegment::encode_state`] capture into a segment
    /// built with the same page size.
    pub fn restore_state(&mut self, r: &mut dsm_sim::SnapReader<'_>) {
        self.next_page = r.usize();
        let n = r.usize();
        self.allocs.clear();
        for _ in 0..n {
            let name = String::from_utf8(r.bytes().to_vec()).expect("alloc name not utf-8");
            let base = r.usize();
            let bytes = r.usize();
            self.allocs.push(Alloc { name, base, bytes });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_start_on_fresh_pages() {
        let mut s = SharedSegment::new(8192);
        let a = s.alloc("a", 100);
        let b = s.alloc("b", 8192);
        let c = s.alloc("c", 8193);
        let d = s.alloc("d", 10);
        assert_eq!(a, 0);
        assert_eq!(b, 8192); // "a" padded to one full page
        assert_eq!(c, 2 * 8192);
        assert_eq!(d, 4 * 8192); // "c" took two pages
        assert_eq!(s.npages(), 5);
        assert_eq!(s.reserved_bytes(), 5 * 8192);
    }

    #[test]
    fn alloc_table_records_names() {
        let mut s = SharedSegment::new(4096);
        s.alloc("grid", 4096 * 3);
        assert_eq!(s.allocs().len(), 1);
        assert_eq!(s.allocs()[0].name, "grid");
        assert_eq!(s.allocs()[0].bytes, 4096 * 3);
    }

    #[test]
    fn page_of_uses_page_size() {
        let mut s = SharedSegment::new(4096);
        s.alloc("x", 4096 * 2);
        assert_eq!(s.page_of(0).index(), 0);
        assert_eq!(s.page_of(4095).index(), 0);
        assert_eq!(s.page_of(4096).index(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_rejected() {
        SharedSegment::new(4096).alloc("z", 0);
    }
}
