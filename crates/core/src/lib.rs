//! # dsm-core — the paper's protocol stack
//!
//! This crate implements the contribution of Keleher's *Update Protocols and
//! Iterative Scientific Applications* (IPPS 1998): six software-DSM
//! protocols for barrier-structured iterative programs, together with the
//! shared-memory API and the cluster driver that executes applications
//! against them.
//!
//! ## Protocols
//!
//! | kind | family | description |
//! |---|---|---|
//! | [`ProtocolKind::LmwI`] | homeless LRC | multi-writer lazy release consistency with invalidation: write notices piggybacked on barriers, diffs fetched on fault, diffs retained until GC |
//! | [`ProtocolKind::LmwU`] | homeless LRC | hybrid invalidate/update: copyset-driven single-message flushes; arriving updates are stored and applied at the next local fault |
//! | [`ProtocolKind::BarI`] | home-based | statically homed pages with runtime home migration; diffs flushed to the home and discarded; whole-page fault service; per-page version indices |
//! | [`ProtocolKind::BarU`] | home-based | bar-i plus copyset-driven update pushes applied inside the barrier (no consumer segv / protection change) |
//! | [`ProtocolKind::BarR`] | home-based | bar-u at sub-page region granularity: on pages whose writers carry a static commuting-writer certificate ([`mem::RegionTable`]), twins are skipped (twin-free dirty tracking bounds the delta), update pushes are clipped to each reader's proven load spans, and pushes to proven non-readers are elided |
//! | [`ProtocolKind::BarS`] | overdrive | bar-u minus segvs: per-barrier-site write prediction, eager twins, eager write-enables |
//! | [`ProtocolKind::BarM`] | overdrive | bar-s minus mprotects: predicted pages stay writable for the whole overdrive phase |
//!
//! ## Layering
//!
//! * [`mem`] — the shared-memory API: page-granular segment allocator and
//!   typed handles ([`mem::SharedArray`], [`mem::SharedGrid2`],
//!   [`mem::SharedScalar`]).
//! * [`proto`] — protocol building blocks (copysets, write notices) and the
//!   per-family implementations.
//! * [`drive`] — the [`drive::cluster::Cluster`]: per-process state, the
//!   fault path, the barrier engine, reductions, the application trait and
//!   runner, and run statistics (Table 1 columns + Figure 3 breakdown).

#![forbid(unsafe_code)]

pub mod check;
pub mod config;
pub mod drive;
pub mod mem;
pub mod proto;

pub use check::{CheckEvent, CheckSink, CountingSink};
pub use config::{DivergencePolicy, OverdriveConfig, PlantedBug, ProtocolKind, RunConfig};
pub use drive::app::{
    run_app, run_app_checked, run_app_scheduled, run_app_with_baseline, DsmApp, PhaseEnd, StepRun,
};
pub use drive::cluster::Cluster;
pub use drive::ctx::{CheckCtx, ExecCtx, SetupCtx};
pub use drive::reduce::ReduceOp;
pub use drive::stats::{RunReport, RunStats};
pub use dsm_sim::{SnapReader, SnapWriter};
pub use mem::{
    page_friendly_stride, Alloc, PageCert, PageClass, ReaderLoads, RegionTable, SharedArray,
    SharedGrid2, SharedScalar, SharedSegment, WriterRegions,
};
