//! The checking event stream.
//!
//! The cluster's choke points — the typed access path, the barrier engine,
//! and the per-protocol consistency actions — emit [`CheckEvent`]s to an
//! optional [`CheckSink`]. With no sink installed the emission sites reduce
//! to one `Option` test and the run is bit-identical (in virtual time and
//! statistics) to an uninstrumented run: events carry borrowed slices, are
//! never charged to any clock, and never mutate cluster state.
//!
//! The analyses themselves (happens-before race detection, the LRC
//! coherence oracle, protocol invariants) live in the `dsm-check` crate;
//! this module only defines the wire format between the cluster and a
//! checker, so that `dsm-core` carries no analysis code.

/// One observation from the running cluster.
///
/// Addresses are segment byte offsets (the same address space the shared
/// handles use); `data` slices borrow from the caller and are only valid
/// for the duration of the callback.
#[derive(Debug)]
pub enum CheckEvent<'a> {
    /// Setup-time write into the golden image, before distribution.
    ImageWrite { addr: usize, data: &'a [u8] },
    /// Application-level read: `pid` observed `data` at `addr`.
    Read {
        pid: usize,
        addr: usize,
        data: &'a [u8],
    },
    /// Application-level write of `data` at `addr`.
    Write {
        pid: usize,
        addr: usize,
        data: &'a [u8],
    },
    /// `pid` arrived at protocol barrier `epoch`.
    BarrierArrive { pid: usize, epoch: u64 },
    /// All processes released from protocol barrier `epoch`; the epoch
    /// counter advances after this event.
    BarrierRelease { epoch: u64 },
    /// A reduction folded at a barrier (`len` elements combined).
    Reduction { op: &'static str, len: usize },
    /// `pid` fetched page content (diffs or a full copy) from `from`.
    Fetch { pid: usize, from: usize, page: u32 },
    /// `writer` pushed its diff of `page` toward the members of `copyset`.
    UpdateFlush {
        writer: usize,
        page: u32,
        copyset: &'a crate::proto::CopySet,
    },
    /// The per-page version index moved `old` → `new` (home-based family).
    VersionBump { page: u32, old: u32, new: u32 },
    /// `pid` filed a write notice: `writer` modified `page` in `epoch`.
    NoticeRecord {
        pid: usize,
        page: u32,
        writer: u16,
        epoch: u64,
    },
    /// `pid` consumed (validated or discarded as self-authored) a notice.
    NoticeConsume {
        pid: usize,
        page: u32,
        writer: u16,
        epoch: u64,
    },
    /// `pid` discarded all retained diffs/notices in a garbage collection;
    /// `retained` is the diff count dropped.
    GcDiscard { pid: usize, retained: usize },
    /// A droppable flush was duplicated in flight: `dst` receives `writer`'s
    /// update of `page` twice. The checker verifies the double application
    /// is idempotent (update application must tolerate at-least-once
    /// delivery on the lossy wire).
    DupDelivery {
        writer: usize,
        page: u32,
        dst: usize,
    },
    /// Region-granularity traffic elision (`bar-r`): `writer` flushed its
    /// delta of `page` but skipped the update push to the `elided` copyset
    /// members, on the strength of a static certificate proving none of
    /// them ever reads the writer's proven spans. The checker grounds
    /// every elision against the certificate — an elided member outside
    /// the proof is a violation, not an optimization.
    FalseShareElided {
        writer: usize,
        page: u32,
        elided: &'a crate::proto::CopySet,
    },
    /// A reliable message from `src` to `dst` needed `attempts` (> 1)
    /// transmissions before its ack landed. Pure wire telemetry: never
    /// affects protocol state, but lets the oracles assert that faults
    /// stayed below the transport (and folds into the trace hash so an
    /// explorer cannot conflate a retried schedule with a clean one).
    WireRetransmit {
        src: usize,
        dst: usize,
        attempts: u32,
    },
}

/// Receiver for the cluster's event stream.
///
/// Implementations must not assume anything about call frequency beyond
/// the ordering guarantees documented on [`CheckEvent`]; they are invoked
/// synchronously from inside the cluster and must not re-enter it.
pub trait CheckSink {
    fn on_event(&mut self, ev: CheckEvent<'_>);
}

/// A sink that counts events and otherwise ignores them (useful for
/// overhead measurements and smoke tests).
#[derive(Default, Debug)]
pub struct CountingSink {
    pub events: u64,
}

impl CheckSink for CountingSink {
    fn on_event(&mut self, _ev: CheckEvent<'_>) {
        self.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.on_event(CheckEvent::BarrierRelease { epoch: 1 });
        s.on_event(CheckEvent::Read {
            pid: 0,
            addr: 8,
            data: &[0u8; 8],
        });
        assert_eq!(s.events, 2);
    }
}
