//! `bar-r`: the region-granularity variant of `bar-u`.
//!
//! bar-r is bar-u plus a statically proven fast path. The plan layer's
//! false-sharing prover ([`crate::mem::RegionTable`]) certifies pages
//! whose writers have pairwise-disjoint store spans; on those pages:
//!
//! * the **twin is skipped** at write-fault time — the frame arms
//!   twin-free dirty tracking instead, and the end-of-epoch delta is a
//!   verbatim capture of the recorded ranges ([`Diff::capture_in`]).
//!   Soundness is the commuting-writer certificate: each span has a
//!   single writer, so the writer's local span contents are globally
//!   freshest and shipping them verbatim commutes with every concurrent
//!   delta (Darcs-style: deltas commute iff their spans are disjoint).
//!   The recorded dynamic ranges are debug-asserted to stay inside the
//!   proven spans — the certificate's grounding obligation;
//! * **update pushes are flushed at region granularity**: a push to a
//!   proven reader is *clipped* to that reader's proven load spans — the
//!   delta words it provably never reads are false-sharing traffic and
//!   stay home — and a push to a copyset member the plan proves loads
//!   none of the writer's spans is *elided* outright. The home still
//!   receives every full delta (its copy must stay canonical), and the
//!   `UpdateFlush` event keeps the full copyset so the checker's
//!   copyset-omission invariant is unchanged; a
//!   [`CheckEvent::FalseShareElided`] event names the skipped members,
//!   and the region-aware checker verifies each one against the
//!   certificate.
//!
//! Pages without a certificate — true-shared, unanalyzed, or with no
//! region table installed at all — take the bar-u paths byte-for-byte.
//! Dispatch lives at three points in `bar.rs`: the fault-time twin
//! decision, the pre-barrier per-page flush, and the post-release
//! expected-update count (an elided member must not mistake the missing
//! push for a lost flush and invalidate a provably clean copy).

use dsm_net::{FlushKind, ReliableKind};
use dsm_sim::Category;
use dsm_vm::{Diff, PageId};

/// Intersect a sorted, disjoint range iterator with sorted, disjoint
/// spans. The result covers exactly `ranges ∩ spans`; since every actual
/// store landed inside the spans, it still covers every written word.
fn clip_to_spans(
    ranges: impl Iterator<Item = (u32, u32)>,
    spans: &[(u32, u32)],
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (rs, re) in ranges {
        let i = spans.partition_point(|&(_, se)| se <= rs);
        for &(ss, se) in &spans[i..] {
            if ss >= re {
                break;
            }
            let (lo, hi) = (rs.max(ss), re.min(se));
            if lo < hi {
                out.push((lo, hi));
            }
        }
    }
    out
}

use crate::check::CheckEvent;
use crate::drive::cluster::Cluster;
use crate::mem::RegionTable;

impl Cluster {
    /// True when `pid`'s write fault on `page` may skip the twin: bar-r
    /// with a region table whose certificate covers the page and names
    /// `pid` as one of its proven writers.
    pub(crate) fn barr_twin_free(&self, pid: usize, page: PageId) -> bool {
        if !self.cfg.protocol.is_region() {
            return false;
        }
        let Some(rt) = &self.cfg.regions else {
            return false;
        };
        rt.cert(page.0)
            .is_some_and(|c| c.certified() && c.writer(pid).is_some())
    }

    /// End-of-epoch flush for one tracked (twin-free) page. Mirrors the
    /// bar-u diff branch of `bar_pre_barrier` with the delta captured
    /// from dirty ranges instead of a twin comparison, pushes clipped to
    /// each reader's proven load spans, and pushes elided entirely for
    /// certified non-readers. Returns whether this page contributed a
    /// version bump.
    pub(crate) fn barr_pre_barrier_page(&mut self, pid: usize, page: PageId) -> bool {
        let home = self.homes[page.index()];
        let rt: std::sync::Arc<RegionTable> = self
            .cfg
            .regions
            .clone()
            .expect("twin-free tracking armed without a region table");
        let cert = rt.cert(page.0).expect("tracked page without certificate");
        let wr = cert
            .writer(pid)
            .expect("tracked page without a writer certificate");

        let d = self.procs[pid].store.frame(page).expect("tracked frame");
        let ranges = d.dirty_ranges();
        if ranges.is_clean() {
            // Defensive: an armed page with no recorded write flushes
            // nothing (bar-u's empty-diff case).
            self.procs[pid]
                .store
                .frame_mut(page)
                .disarm_dirty_tracking();
            self.stats.empty_diffs += 1;
            return false;
        }
        // The certificate's dynamic grounding: every recorded range must
        // lie inside the statically proven spans. A collapsed range set
        // lost that information, so the capture falls back to the full
        // proven spans — still sound (single writer per span), merely
        // bigger. A *coarse* cover (scattered writes merged past the
        // range cap) may straddle the gaps between this writer's spans,
        // so it is clipped back to them: capturing another writer's words
        // would ship stale bytes over fresh ones.
        let spans: Vec<(u32, u32)> = if ranges.is_all() {
            wr.spans.clone()
        } else if ranges.is_coarse() {
            clip_to_spans(ranges.iter(), &wr.spans)
        } else {
            debug_assert!(
                ranges.within(&wr.spans),
                "region certificate violated: page {} writer {pid} wrote outside proven spans",
                page.0
            );
            ranges.iter().collect()
        };
        let captured: usize = spans.iter().map(|&(s, e)| (e - s) as usize).sum();
        // The region scan touches only the captured bytes (no page-wide
        // twin comparison), but pays the same fixed diff overhead.
        let scan = self.cfg.sim.costs.diff_create(captured);
        self.charge(pid, Category::Os, scan);
        self.stats.diffs_created += 1;
        let diff = Diff::capture_in(
            page,
            self.procs[pid].store.frame(page).expect("frame").data(),
            &spans,
            &mut self.pool,
        );
        self.procs[pid]
            .store
            .frame_mut(page)
            .disarm_dirty_tracking();
        debug_assert!(!diff.is_empty(), "non-clean ranges captured no runs");

        let old = self.versions[page.index()];
        self.bar_deliveries.bump(page, &mut self.versions);
        let new = self.versions[page.index()];
        self.emit(CheckEvent::VersionBump {
            page: page.0,
            old,
            new,
        });
        self.bar_deliveries.writer_bumps.push((pid, page));

        if pid != home {
            let sent_at = self.procs[pid].clock.now();
            let tr = self.net.push_reliable(
                pid,
                home,
                ReliableKind::DiffFlushHome,
                diff.wire_bytes(),
                sent_at,
            );
            self.charge(pid, Category::Os, tr.sender);
            self.stats
                .note_flush(page.index(), diff.wire_bytes() as u64);
            if tr.attempts > 1 {
                self.emit(CheckEvent::WireRetransmit {
                    src: pid,
                    dst: home,
                    attempts: tr.attempts,
                });
            }
            self.bar_deliveries
                .home_flushes
                .push((home, page, diff.clone(), tr.receiver));
        }

        // Update pushes: full-copyset event (the copyset-omission
        // invariant is unchanged), pushes only to proven readers, an
        // elision event naming everyone the certificate excused. Each
        // push is *clipped* to the receiver's proven load spans — the
        // region-granularity flush proper: words of the delta the
        // receiver provably never reads are false-sharing traffic and
        // stay home. (The receiver's copy goes stale on those words,
        // which is exactly what the certificate licenses; the home's
        // canonical copy got the full delta above.)
        let cs = self.copyset(page).clone();
        self.emit(CheckEvent::UpdateFlush {
            writer: pid,
            page: page.0,
            copyset: &cs,
        });
        let readers = &wr.readers;
        let mut elided = crate::proto::CopySet::EMPTY;
        let members: Vec<usize> = cs.others(pid).filter(|&q| q != home).collect();
        for q in members {
            if !readers.contains(q) {
                elided.insert(q);
                self.stats.region_elided_pushes += 1;
                continue;
            }
            let pdiff = match cert.loads_of(q) {
                Some(lq) => {
                    let clipped = clip_to_spans(spans.iter().copied(), lq);
                    if clipped == spans {
                        diff.clone()
                    } else {
                        Diff::capture_in(
                            page,
                            self.procs[pid].store.frame(page).expect("frame").data(),
                            &clipped,
                            &mut self.pool,
                        )
                    }
                }
                // No load footprint recorded for a proven reader: the
                // bitmap was computed from the same data, so this cannot
                // happen with a prover-built table — stay conservative.
                None => diff.clone(),
            };
            self.stats.region_push_bytes_saved += (diff.wire_bytes() - pdiff.wire_bytes()) as u64;
            let now = self.procs[pid].clock.now();
            let out = self
                .net
                .push_update(pid, q, FlushKind::UpdateFlush, pdiff.wire_bytes(), now);
            self.charge(pid, Category::Os, out.transit.sender);
            self.stats
                .note_flush(page.index(), pdiff.wire_bytes() as u64);
            if out.delivered {
                self.bar_deliveries.bar_updates.push((
                    q,
                    page,
                    pdiff.clone(),
                    out.transit.receiver,
                ));
                if out.duplicated {
                    self.emit(CheckEvent::DupDelivery {
                        writer: pid,
                        page: page.0,
                        dst: q,
                    });
                    self.bar_deliveries.bar_updates.push((
                        q,
                        page,
                        pdiff.clone(),
                        out.transit.receiver,
                    ));
                }
            }
            self.pool.put_diff(pdiff);
        }
        if !elided.is_empty() {
            self.emit(CheckEvent::FalseShareElided {
                writer: pid,
                page: page.0,
                elided: &elided,
            });
        }
        self.pool.put_diff(diff);
        true
    }

    /// The update count a non-home process must receive for `page` to
    /// self-validate, when bar-r elision changes it from the bar-u
    /// default (`bumps - own contributions`). `None` means "use the
    /// default": not bar-r, no table, or the page is uncertified.
    ///
    /// On a certified page the expectation counts only the bumps whose
    /// writer actually pushes to `pid`: writers whose proven spans `pid`
    /// loads (plus, conservatively, any writer the certificate does not
    /// name — such a writer took the twin path and pushed to everyone).
    /// An elided member therefore expects zero and self-validates for
    /// free — sound because it provably never loads the stale words.
    pub(crate) fn barr_expected_updates(&self, pid: usize, page: PageId) -> Option<usize> {
        if !self.cfg.protocol.is_region() {
            return None;
        }
        let rt = self.cfg.regions.as_ref()?;
        let cert = rt.cert(page.0)?;
        if !cert.certified() {
            return None;
        }
        let n = self
            .bar_deliveries
            .writer_bumps
            .iter()
            .filter(|&&(w, p)| {
                p == page && w != pid && cert.writer(w).is_none_or(|wr| wr.readers.contains(pid))
            })
            .count();
        Some(n)
    }
}
