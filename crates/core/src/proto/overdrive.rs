//! Overdrive: `bar-s` and `bar-m` (§§4–5).
//!
//! Both protocols exploit that "the set of shared data accessed by
//! individual threads is often invariant from one iteration to the next".
//! After a learning period, per-barrier-site write sets are assumed to
//! repeat:
//!
//! * **bar-s** eliminates segvs: before leaving a barrier, the pages
//!   predicted to be written in the coming epoch get their twins created
//!   and their protection set writable, so the first write never traps. At
//!   the next barrier a diff is created whether or not the write happened
//!   ("the twin and diff creations are pure overhead if the write did not
//!   happen"); zero-length diffs are simply not flushed.
//! * **bar-m** additionally eliminates mprotects: when overdrive engages,
//!   the union of all predicted write sets is made writable once, and no
//!   protection change happens again while overdrive holds. A write to a
//!   union page in the *wrong* epoch is undetectable — "bar-m is therefore
//!   not guaranteed to maintain consistency" — which the optional validate
//!   mode demonstrates.
//!
//! Any trapped write during overdrive is by definition unanticipated; per
//! the configured [`crate::config::DivergencePolicy`] the cluster either
//! reverts to bar-u at the next barrier or aborts ("complain loudly and
//! exit").

use std::collections::BTreeSet;

use dsm_sim::Category;
use dsm_vm::{PageId, Protection};

use crate::config::{DivergencePolicy, ProtocolKind};
use crate::drive::cluster::Cluster;

/// Cluster-wide overdrive mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OdMode {
    /// Observing write sets (protocol behaves exactly like bar-u).
    Learning,
    /// Steady state: traps eliminated per the protocol variant.
    Overdrive,
    /// Permanently fell back to bar-u after a divergence.
    Reverted,
}

/// Per-process overdrive state.
#[derive(Default, Debug)]
pub struct OdProc {
    /// Write sets observed this iteration, per barrier site.
    pub cur_sites: Vec<BTreeSet<u32>>,
    /// Write sets of the last completed iteration (the prediction source).
    pub prev_sites: Vec<BTreeSet<u32>>,
    /// Whether `prev_sites` holds a full iteration.
    pub have_prev: bool,
    /// bar-m: pages write-enabled for the whole overdrive phase.
    pub pre_enabled: BTreeSet<u32>,
}

impl OdProc {
    fn ensure_sites(&mut self, phases: usize) {
        if self.cur_sites.len() < phases {
            self.cur_sites.resize_with(phases, BTreeSet::new);
            self.prev_sites.resize_with(phases, BTreeSet::new);
        }
    }
}

impl Cluster {
    /// Record the write set of the epoch that just ended (learning mode).
    pub(crate) fn od_record(&mut self, site: usize) {
        let phases = self.phases_per_iter;
        for p in &mut self.procs {
            p.od.ensure_sites(phases);
            p.od.cur_sites[site] = p.dirty.iter().map(|pg| pg.0).collect();
        }
    }

    /// At an iteration boundary: check stability and possibly engage.
    ///
    /// Engagement requires `learn_iters` completed iterations *and* the
    /// last two iterations' write sets to agree for every process and site.
    pub(crate) fn od_iteration_boundary(&mut self) {
        if self.od_mode != OdMode::Learning {
            return;
        }
        let phases = self.phases_per_iter;
        let mut stable = true;
        for p in &mut self.procs {
            p.od.ensure_sites(phases);
            if !p.od.have_prev || p.od.cur_sites != p.od.prev_sites {
                stable = false;
            }
            core::mem::swap(&mut p.od.prev_sites, &mut p.od.cur_sites);
            for s in &mut p.od.cur_sites {
                s.clear();
            }
            p.od.have_prev = true;
        }
        if stable && self.iter + 1 >= self.cfg.overdrive.learn_iters {
            self.od_enter();
        }
    }

    /// Engage overdrive.
    fn od_enter(&mut self) {
        self.od_mode = OdMode::Overdrive;
        if self.cfg.protocol == ProtocolKind::BarM {
            // One-time write-enable of the union of all predicted sets.
            for pid in 0..self.nprocs() {
                let union: BTreeSet<u32> = self.procs[pid]
                    .od
                    .prev_sites
                    .iter()
                    .flat_map(|s| s.iter().copied())
                    .collect();
                for pg in &union {
                    let page = PageId(*pg);
                    // A page this process writes every iteration is valid
                    // here (it was just written and diffed); write-enable it.
                    self.materialize_pristine(pid, page);
                    self.set_prot(pid, page, Protection::ReadWrite);
                }
                self.procs[pid].od.pre_enabled = union;
            }
        }
    }

    /// Arm predictions for the next epoch: twins (both variants) and write
    /// enables (bar-s only; bar-m pages are already writable).
    ///
    /// The predicted pages are pre-inserted into the dirty list, so the
    /// next barrier diffs them exactly as bar-u would have.
    pub(crate) fn od_arm(&mut self, next_site: usize) {
        debug_assert_eq!(self.od_mode, OdMode::Overdrive);
        let bar_s = self.cfg.protocol == ProtocolKind::BarS;
        let twin_cost = self.cfg.sim.costs.twin_create(self.page_size());
        for pid in 0..self.nprocs() {
            let predicted: Vec<u32> = self.procs[pid]
                .od
                .prev_sites
                .get(next_site)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            for pg in predicted {
                let page = PageId(pg);
                self.materialize_pristine(pid, page);
                // "We therefore make a twin of x and make it writable
                // before we leave barrier 1" — every predicted page is
                // twinned eagerly; for pages the home effect would not have
                // diffed, the twin is pure overhead (dropped undiffed at
                // the next barrier).
                self.procs[pid]
                    .store
                    .frame_mut(page)
                    .refresh_twin_in(&mut self.pool);
                self.charge(pid, Category::Os, twin_cost);
                self.stats.twins += 1;
                if bar_s {
                    self.set_prot(pid, page, Protection::ReadWrite);
                } else {
                    debug_assert!(
                        self.procs[pid].store.protection(page).writable(),
                        "bar-m pre-enabled page lost write permission"
                    );
                }
                self.procs[pid].dirty.push(page);
            }
            // Validate mode: every pre-enabled page keeps a shadow twin so
            // wrong-epoch writes are observable by the checker (uncharged).
            if self.cfg.overdrive.validate && self.cfg.protocol == ProtocolKind::BarM {
                let pages: Vec<u32> = self.procs[pid].od.pre_enabled.iter().copied().collect();
                for pg in pages {
                    let page = PageId(pg);
                    if !self.procs[pid].store.frame_mut(page).has_twin() {
                        self.procs[pid]
                            .store
                            .frame_mut(page)
                            .refresh_twin_in(&mut self.pool);
                    }
                }
            }
        }
    }

    /// A write trapped during overdrive: count it and apply the policy.
    pub(crate) fn od_unanticipated(&mut self, pid: usize, page: PageId) {
        self.stats.overdrive_unanticipated += 1;
        match self.cfg.overdrive.policy {
            DivergencePolicy::Abort => panic!(
                "overdrive divergence: unanticipated write by p{pid} to {page:?} \
                 (the paper's prototype would 'complain loudly and exit')"
            ),
            DivergencePolicy::Revert => {
                self.od_revert_pending = true;
            }
        }
    }

    /// Execute a pending reversion: back to bar-u semantics for good.
    pub(crate) fn od_do_revert(&mut self) {
        debug_assert!(self.od_revert_pending);
        self.od_revert_pending = false;
        self.od_mode = OdMode::Reverted;
        self.stats.overdrive_reversions += 1;
        if self.cfg.protocol == ProtocolKind::BarM {
            // Restore write trapping on every pre-enabled page.
            for pid in 0..self.nprocs() {
                let pages: Vec<u32> = self.procs[pid].od.pre_enabled.iter().copied().collect();
                for pg in pages {
                    let page = PageId(pg);
                    if self.procs[pid].store.protection(page).writable() {
                        self.set_prot(pid, page, Protection::Read);
                    }
                }
                self.procs[pid].od.pre_enabled.clear();
            }
        }
    }

    /// bar-m validate mode: before the normal pre-barrier step, check every
    /// pre-enabled page that was *not* predicted for the ending epoch. A
    /// modification there is exactly the silent consistency violation §5
    /// warns about. Uncharged — this is a checker, not part of the protocol.
    pub(crate) fn od_validate_shadow(&mut self, ending_site: usize) {
        for pid in 0..self.nprocs() {
            let predicted = &self.procs[pid].od.prev_sites[ending_site];
            let unpredicted: Vec<u32> = self.procs[pid]
                .od
                .pre_enabled
                .difference(predicted)
                .copied()
                .collect();
            for pg in unpredicted {
                let page = PageId(pg);
                let Some(f) = self.procs[pid].store.frame(page) else {
                    continue;
                };
                if f.has_twin() && !f.diff_against_twin(page).is_empty() {
                    self.stats.consistency_violations += 1;
                }
                // Refresh the shadow twin for the next epoch's check.
                self.procs[pid]
                    .store
                    .frame_mut(page)
                    .refresh_twin_in(&mut self.pool);
            }
        }
    }
}
