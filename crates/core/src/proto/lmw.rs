//! Homeless multi-writer LRC: `lmw-i` and `lmw-u`.
//!
//! Faithful to §2.1 of the paper:
//!
//! * modifications are captured as diffs against twins, **lazily** — the
//!   twin accumulates across barrier epochs and the diff is only created
//!   when some consumer requests it (or when a foreign write notice forces
//!   sealing). This is the TreadMarks behaviour the paper contrasts with
//!   the home-based family ("diffs are created promptly at the end of each
//!   interval rather than lazily, as with homeless protocols");
//! * **write notices** naming the modified intervals ride on barrier
//!   messages and invalidate remote copies;
//! * faults fetch the named diffs from their creators and apply them to the
//!   pre-existing replica;
//! * diffs and notices are **retained indefinitely** — "no diff, nor any of
//!   the write notices that name diffs, can be discarded until
//!   garbage-collection occurs";
//! * `lmw-u` additionally pushes diffs as single unreliable flushes to the
//!   processors in the writer's per-page copyset (sealing those pages every
//!   barrier). Arriving updates are **stored, not applied**: "lmw-u does
//!   not immediately validate pages when diffs ... arrive by update.
//!   Instead, lmw merely stores updates to locally invalid pages and checks
//!   to see if all required diffs are present when the next access to that
//!   page occurs. This next access is signaled by a segmentation fault."

use dsm_net::{FlushKind, ReliableKind};
use dsm_sim::{Category, FastMap, Time};
use dsm_vm::{Diff, FaultKind, Frame, PageBuf, PageId, Protection};

use crate::check::CheckEvent;
use crate::config::{PlantedBug, ProtocolKind};
use crate::drive::cluster::Cluster;
use crate::proto::copyset::CopySet;
use crate::proto::notice::{WriteNotice, NOTICE_WIRE_BYTES};

/// A sealed diff covering this writer's modifications in the epoch range
/// `[lo, hi]`. Foreign notices force sealing, so no other process wrote the
/// page within `[lo, hi)`; concurrent writes *at* `hi` are disjoint
/// (race-free programs), which makes `(hi, lo, writer)` a sound application
/// order.
#[derive(Clone, Debug)]
pub struct Segment {
    pub lo: u64,
    pub hi: u64,
    pub diff: Diff,
}

/// Per-process homeless-protocol state.
#[derive(Default, Debug)]
pub struct LmwProc {
    /// Sealed segments this process created, per page, ascending `hi`.
    /// Retained until GC (the paper's "voracious appetite for memory").
    pub segments: FastMap<u32, Vec<Segment>>,
    /// Pages with an accumulating (un-diffed) twin:
    /// page → (first dirty epoch, last dirty epoch).
    pub pending: FastMap<u32, (u64, u64)>,
    /// Write notices received but not yet applied locally, per page.
    pub known_notices: FastMap<u32, Vec<WriteNotice>>,
    /// lmw-u: updates that arrived by flush: page → (writer, lo, hi, diff).
    pub pending_updates: FastMap<u32, Vec<(u16, u64, u64, Diff)>>,
    /// lmw-u: this process's view of who caches each page it writes.
    pub copysets: FastMap<u32, CopySet>,
    /// Per (page, writer): highest segment `hi` applied locally. Together
    /// with the frame's `applied_through` floor (raised by full-page
    /// fetches) this decides exactly which intervals still need fetching —
    /// a coarser single watermark would re-apply multi-epoch segments whose
    /// older words can clobber this process's own newer writes.
    pub applied: FastMap<(u32, u16), u64>,
}

impl LmwProc {
    /// Total retained diffs (GC-pressure metric).
    pub fn retained_diffs(&self) -> usize {
        self.segments.values().map(Vec::len).sum::<usize>()
            + self.pending_updates.values().map(Vec::len).sum::<usize>()
    }
}

impl Cluster {
    // ------------------------------------------------------------------
    // Fault path
    // ------------------------------------------------------------------

    pub(crate) fn lmw_fault(&mut self, pid: usize, page: PageId, kind: FaultKind) {
        self.charge_segv(pid);
        if kind.needs_validation() {
            self.lmw_validate(pid, page);
        }
        if kind.is_write() {
            if !self.procs[pid].store.frame_mut(page).has_twin() {
                self.procs[pid]
                    .store
                    .frame_mut(page)
                    .make_twin_in(&mut self.pool);
                let twin_cost = self.cfg.sim.costs.twin_create(self.page_size());
                self.charge(pid, Category::Os, twin_cost);
                self.stats.twins += 1;
            }
            let epoch = self.epoch;
            self.procs[pid]
                .lmw
                .pending
                .entry(page.0)
                .and_modify(|(_, last)| *last = epoch)
                .or_insert((epoch, epoch));
            self.set_prot(pid, page, Protection::ReadWrite);
            self.procs[pid].dirty.push(page);
        }
    }

    /// Seal `writer`'s pending accumulation for `page` into a segment,
    /// charging the page-length comparison to `cat` on `writer`'s clock.
    /// Returns false if nothing was pending.
    fn lmw_seal(&mut self, writer: usize, page: PageId, cat: Category) -> bool {
        let Some((lo, hi)) = self.procs[writer].lmw.pending.remove(&page.0) else {
            return false;
        };
        let scan = self.cfg.sim.costs.diff_create(self.page_size());
        self.charge(writer, cat, scan);
        self.stats.diffs_created += 1;
        let diff = self.procs[writer]
            .store
            .frame_mut(page)
            .diff_against_twin_in(page, &mut self.pool);
        self.procs[writer]
            .store
            .frame_mut(page)
            .drop_twin_into(&mut self.pool);
        if diff.is_empty() {
            self.stats.empty_diffs += 1;
            self.pool.put_diff(diff);
            return true;
        }
        self.procs[writer]
            .lmw
            .segments
            .entry(page.0)
            .or_default()
            .push(Segment { lo, hi, diff });
        true
    }

    /// Bring `pid`'s copy of `page` current: apply stored updates, fetch
    /// missing segments from their creators, apply in interval order.
    pub(crate) fn lmw_validate(&mut self, pid: usize, page: PageId) {
        let mut notices = self.procs[pid]
            .lmw
            .known_notices
            .remove(&page.0)
            .unwrap_or_default();
        for n in &notices {
            self.emit(CheckEvent::NoticeConsume {
                pid,
                page: n.page,
                writer: n.writer,
                epoch: n.epoch,
            });
        }
        notices.retain(|n| n.writer as usize != pid);
        notices.sort_by_key(|n| (n.epoch, n.writer));

        let floor = self.procs[pid]
            .store
            .frame(page)
            .map_or(0, Frame::applied_through);
        let applied_w = |lmw: &LmwProc, w: u16| -> u64 {
            lmw.applied
                .get(&(page.0, w))
                .copied()
                .unwrap_or(0)
                .max(floor)
        };

        if notices.is_empty() {
            // Cold fault (possible after GC): fetch a full current copy
            // from the page's last writer.
            self.lmw_fetch_full(pid, page);
            return;
        }

        let mut to_apply: Vec<(u64, u64, u16, Diff)> = Vec::new();

        // lmw-u: consult the pending-update store — this per-fault scan is
        // exactly the data-structure overhead the paper blames for
        // Barnes/swm under lmw-u.
        //
        // Coverage is per epoch *range*: a stored update for intervals
        // [lo, hi] says nothing about the same writer's earlier (or
        // dropped) intervals, which must still be fetched.
        let mut covered: FastMap<u16, Vec<(u64, u64)>> = FastMap::default();
        if self.cfg.protocol == ProtocolKind::LmwU {
            let stored = self.procs[pid]
                .lmw
                .pending_updates
                .remove(&page.0)
                .unwrap_or_default();
            let lookup = Time::from_ns(self.cfg.sim.costs.update_store_lookup_ns);
            self.charge(pid, Category::Os, lookup.scale(stored.len().max(1) as u64));
            for (w, lo, hi, diff) in stored {
                if hi > applied_w(&self.procs[pid].lmw, w) {
                    covered.entry(w).or_default().push((lo, hi));
                    to_apply.push((hi, lo, w, diff));
                }
            }
        }
        let planted = self.cfg.planted;
        let is_covered = move |covered: &FastMap<u16, Vec<(u64, u64)>>, w: u16, e: u64| {
            covered.get(&w).is_some_and(|v| {
                v.iter().any(|&(lo, hi)| match planted {
                    // Seeded regression bug: pretends a stored [lo, hi]
                    // update covers every epoch up to hi, so an earlier
                    // dropped flush from the same writer is never fetched.
                    PlantedBug::LmwUCoverageGap => e <= hi,
                    // The stale-read plant lives in the pre-barrier seal
                    // path, not here — coverage stays correct.
                    PlantedBug::None | PlantedBug::OneSidedStaleRead => lo <= e && e <= hi,
                })
            })
        };

        // Which writers still have intervals we cannot cover locally?
        let mut fetch_writers: Vec<u16> = Vec::new();
        for n in &notices {
            if n.epoch > applied_w(&self.procs[pid].lmw, n.writer)
                && !is_covered(&covered, n.writer, n.epoch)
                && !fetch_writers.contains(&n.writer)
            {
                fetch_writers.push(n.writer);
            }
        }
        fetch_writers.sort_unstable();

        let used_net = !fetch_writers.is_empty();
        for &w in &fetch_writers {
            let writer = w as usize;
            self.emit(CheckEvent::Fetch {
                pid,
                from: writer,
                page: page.0,
            });
            if !self.one_sided() {
                // The writer seals any pending accumulation on demand
                // (lazy diff creation) — served in its sigio handler. On
                // the one-sided backend there is no serve-time handler to
                // do this: segments were sealed eagerly at the writer's
                // last pre-barrier, so everything a notice can name is
                // already fetchable in place.
                self.lmw_seal(writer, page, Category::Sigio);
            }
            let now = self.procs[pid].clock.now();
            let since = applied_w(&self.procs[pid].lmw, w);
            let segs: Vec<Segment> = self.procs[writer]
                .lmw
                .segments
                .get(&page.0)
                .map(|v| v.iter().filter(|s| s.hi > since).cloned().collect())
                .unwrap_or_default();
            let reply_bytes: usize = segs.iter().map(|s| s.diff.wire_bytes()).sum();
            let prep = Time::from_ns(self.cfg.sim.costs.page_prep_ns);
            let d = self.net.fetch(
                pid,
                writer,
                ReliableKind::DiffRequest,
                NOTICE_WIRE_BYTES,
                ReliableKind::DiffReply,
                reply_bytes,
                prep,
                now,
            );
            self.charge(pid, Category::Wait, d.wait);
            self.procs[pid].clock.note_retrans(d.retrans_wait);
            if d.req_attempts > 1 {
                self.emit(CheckEvent::WireRetransmit {
                    src: pid,
                    dst: writer,
                    attempts: d.req_attempts,
                });
            }
            if d.rep_attempts > 1 {
                self.emit(CheckEvent::WireRetransmit {
                    src: writer,
                    dst: pid,
                    attempts: d.rep_attempts,
                });
            }
            self.charge(writer, Category::Sigio, d.server_cpu);
            for s in segs {
                // Skip duplicates of segments already covered by updates.
                if !to_apply
                    .iter()
                    .any(|(hi, lo, tw, _)| *tw == w && *hi == s.hi && *lo == s.lo)
                {
                    to_apply.push((s.hi, s.lo, w, s.diff));
                }
            }
            if self.cfg.protocol == ProtocolKind::LmwU {
                self.procs[writer]
                    .lmw
                    .copysets
                    .entry(page.0)
                    .or_default()
                    .insert(pid);
            }
        }

        // Apply in interval order: ascending hi, then ascending lo (an
        // earlier-starting segment\'s words are older than a same-hi
        // segment that started at hi), then writer (same-epoch concurrent
        // diffs are disjoint, so that tie is harmless).
        to_apply.sort_by_key(|(hi, lo, w, _)| (*hi, *lo, *w));
        for (_, _, _, diff) in &to_apply {
            let cost = self.cfg.sim.costs.diff_apply(diff.payload_bytes());
            self.charge(pid, Category::Os, cost);
        }
        let f = self.procs[pid].store.frame_mut(page);
        for (_, _, _, diff) in &to_apply {
            f.apply_diff(diff);
        }
        for (hi, _, w, _) in &to_apply {
            let e = self.procs[pid].lmw.applied.entry((page.0, *w)).or_insert(0);
            *e = (*e).max(*hi);
        }
        for (_, _, _, diff) in to_apply {
            self.pool.put_diff(diff);
        }

        self.set_prot(pid, page, Protection::Read);
        if used_net {
            self.stats.remote_misses += 1;
        } else {
            self.stats.local_faults += 1;
        }
    }

    /// Full-page fetch from the page's last writer (cold fault after GC).
    fn lmw_fetch_full(&mut self, pid: usize, page: PageId) {
        let writer = self.last_writer[page.index()] as usize;
        if writer == pid || self.last_write_epoch[page.index()] == 0 {
            // Our own copy (or the initial image) is already current.
            self.set_prot(pid, page, Protection::Read);
            self.stats.local_faults += 1;
            return;
        }
        // Make sure the server's copy is current first (it may itself hold
        // stale words written by other processes).
        if !self.procs[writer].store.protection(page).readable() {
            self.lmw_validate(writer, page);
        }
        self.emit(CheckEvent::Fetch {
            pid,
            from: writer,
            page: page.0,
        });
        let ps = self.page_size();
        let prep = Time::from_ns(self.cfg.sim.costs.page_prep_ns);
        let fixed = Time::from_ns(self.cfg.sim.costs.page_fault_fixed_ns);
        let now = self.procs[pid].clock.now();
        let d = self.net.fetch(
            pid,
            writer,
            ReliableKind::PageRequest,
            0,
            ReliableKind::PageReply,
            ps,
            prep,
            now,
        );
        self.charge(pid, Category::Wait, d.wait + fixed);
        self.procs[pid].clock.note_retrans(d.retrans_wait);
        if d.req_attempts > 1 {
            self.emit(CheckEvent::WireRetransmit {
                src: pid,
                dst: writer,
                attempts: d.req_attempts,
            });
        }
        if d.rep_attempts > 1 {
            self.emit(CheckEvent::WireRetransmit {
                src: writer,
                dst: pid,
                attempts: d.rep_attempts,
            });
        }
        self.charge(writer, Category::Sigio, d.server_cpu);
        let epoch = self.last_write_epoch[page.index()];
        {
            let (me, srv) = Cluster::pair_mut(&mut self.procs, pid, writer);
            let src = srv.store.frame(page).expect("server frame");
            let f = me.store.frame_mut(page);
            f.fill_from(src.data());
            // A full copy raises the all-writers floor.
            f.raise_applied_through(epoch);
        }
        self.set_prot(pid, page, Protection::Read);
        self.stats.remote_misses += 1;
        if self.cfg.protocol == ProtocolKind::LmwU {
            self.procs[writer]
                .lmw
                .copysets
                .entry(page.0)
                .or_default()
                .insert(pid);
        }
    }

    // ------------------------------------------------------------------
    // Barrier hooks (called by drive::barrier)
    // ------------------------------------------------------------------

    /// End-of-epoch work before arriving at the barrier: emit write notices
    /// for dirty pages; keep twins accumulating (lazy diffs) except for
    /// lmw-u copyset pages, which are sealed and flushed now.
    pub(crate) fn lmw_pre_barrier(&mut self, pid: usize) -> Vec<WriteNotice> {
        let dirty = core::mem::take(&mut self.procs[pid].dirty);
        let mut notices = Vec::with_capacity(dirty.len());
        for page in dirty {
            // Re-arm the write trap for the next epoch; the twin survives.
            self.set_prot(pid, page, Protection::Read);
            let cs = if self.cfg.protocol == ProtocolKind::LmwU {
                self.procs[pid]
                    .lmw
                    .copysets
                    .get(&page.0)
                    .cloned()
                    .unwrap_or(CopySet::EMPTY)
            } else {
                CopySet::EMPTY
            };
            if cs.others(pid).next().is_some() {
                // Update path: seal now and push the newest segment.
                self.lmw_seal(pid, page, Category::Os);
                let seg: Option<Segment> = self.procs[pid]
                    .lmw
                    .segments
                    .get(&page.0)
                    .and_then(|v| v.last())
                    .filter(|s| s.hi == self.epoch)
                    .cloned();
                let Some(seg) = seg else {
                    // The seal produced an empty diff: nothing changed, no
                    // notice, no flush.
                    continue;
                };
                notices.push(WriteNotice::new(page, pid, self.epoch));
                self.emit(CheckEvent::UpdateFlush {
                    writer: pid,
                    page: page.0,
                    copyset: &cs,
                });
                let members: Vec<usize> = cs.others(pid).collect();
                for q in members {
                    let now = self.procs[pid].clock.now();
                    let out = self.net.push_update(
                        pid,
                        q,
                        FlushKind::UpdateFlush,
                        seg.diff.wire_bytes(),
                        now,
                    );
                    self.charge(pid, Category::Os, out.transit.sender);
                    if out.delivered {
                        self.bar_deliveries.lmw_updates.push((
                            q,
                            page,
                            pid as u16,
                            seg.lo,
                            seg.hi,
                            seg.diff.clone(),
                            out.transit.receiver,
                        ));
                        if out.duplicated {
                            // Duplicated in flight: the receiver applies the
                            // same absolute-valued segment twice, which is
                            // idempotent by construction (the oracle checks
                            // this).
                            self.emit(CheckEvent::DupDelivery {
                                writer: pid,
                                page: page.0,
                                dst: q,
                            });
                            self.bar_deliveries.lmw_updates.push((
                                q,
                                page,
                                pid as u16,
                                seg.lo,
                                seg.hi,
                                seg.diff.clone(),
                                out.transit.receiver,
                            ));
                        }
                    }
                }
            } else {
                // Invalidate path: notice only; the diff stays latent in
                // the accumulating twin until someone asks — except on
                // the one-sided backend, where no serve-time handler
                // exists to seal it on demand. There the diff is sealed
                // *eagerly*, right here, so a remote read finds every
                // noticed epoch fetchable in place. (The planted
                // `OneSidedStaleRead` bug skips exactly this seal while
                // keeping the notice: the next one-sided fetch misses the
                // segment and the oracle flags the stale read.)
                if self.one_sided() && self.cfg.planted != PlantedBug::OneSidedStaleRead {
                    self.lmw_seal(pid, page, Category::Os);
                }
                notices.push(WriteNotice::new(page, pid, self.epoch));
            }
        }
        notices
    }

    /// Post-release work: record and act on the merged write notices, and
    /// (lmw-u) file away arriving update flushes.
    pub(crate) fn lmw_post_release(&mut self, pid: usize, merged: &[WriteNotice]) {
        let notice_cost = Time::from_ns(self.cfg.sim.costs.write_notice_ns);
        for n in merged {
            if n.writer as usize == pid {
                continue;
            }
            self.charge(pid, Category::Os, notice_cost);
            // A foreign write forces sealing of our own accumulation for
            // that page: segments of different writers must not interleave.
            if self.procs[pid].lmw.pending.contains_key(&n.page) {
                self.lmw_seal(pid, n.page_id(), Category::Os);
            }
            // Copyset heuristic: seeing p's write notice for a page this
            // process also caches means p holds (a modified copy of) the
            // page — p belongs in our copyset for it.
            if self.cfg.protocol == ProtocolKind::LmwU
                && self.procs[pid].store.frame(n.page_id()).is_some()
            {
                self.procs[pid]
                    .lmw
                    .copysets
                    .entry(n.page)
                    .or_default()
                    .insert(n.writer as usize);
            }
            self.emit(CheckEvent::NoticeRecord {
                pid,
                page: n.page,
                writer: n.writer,
                epoch: n.epoch,
            });
            self.procs[pid]
                .lmw
                .known_notices
                .entry(n.page)
                .or_default()
                .push(*n);
            if self.procs[pid].store.protection(n.page_id()).readable() {
                self.set_prot(pid, n.page_id(), Protection::Invalid);
            }
        }
        // Updates addressed to this process, flushed before the senders
        // arrived at the barrier.
        let all = core::mem::take(&mut self.bar_deliveries.lmw_updates);
        let (mine, rest): (Vec<_>, Vec<_>) = all.into_iter().partition(|(dst, ..)| *dst == pid);
        self.bar_deliveries.lmw_updates = rest;
        let mine = self.delivery_order(mine, |t| t.1 .0);
        for (_, page, writer, lo, hi, diff, recv) in mine {
            self.charge(pid, Category::Sigio, recv);
            // Insertion slows down as the out-of-order store grows — stale
            // copyset members never drain theirs (the Barnes pathology).
            let resident = self.procs[pid]
                .lmw
                .pending_updates
                .values()
                .map(Vec::len)
                .sum::<usize>() as u64;
            let insert_cost = Time::from_ns(
                self.cfg.sim.costs.update_store_insert_ns
                    + self.cfg.sim.costs.update_store_per_pending_ns * resident,
            );
            self.charge(pid, Category::Os, insert_cost);
            self.stats.update_inserts += 1;
            self.procs[pid]
                .lmw
                .pending_updates
                .entry(page.0)
                .or_default()
                .push((writer, lo, hi, diff));
        }
    }

    /// Stop-the-world garbage collection: make every noticed page current
    /// everywhere, then discard all retained segments, notices, and stored
    /// updates.
    pub(crate) fn lmw_maybe_gc(&mut self) {
        let total: usize = self.procs.iter().map(|p| p.lmw.retained_diffs()).sum();
        if total <= self.cfg.gc_diff_threshold {
            return;
        }
        self.stats.gc_events += 1;
        let n = self.nprocs();
        for pid in 0..n {
            let pages: Vec<u32> = self.procs[pid]
                .lmw
                .known_notices
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(pg, _)| *pg)
                .collect();
            for pg in pages {
                let page = PageId(pg);
                self.materialize_pristine(pid, page);
                if !self.procs[pid].store.protection(page).readable() {
                    self.lmw_validate(pid, page);
                }
            }
        }
        let gc_per_diff = Time::from_ns(self.cfg.sim.costs.gc_per_diff_ns);
        for pid in 0..n {
            let dropped = self.procs[pid].lmw.retained_diffs() as u64;
            self.emit(CheckEvent::GcDiscard {
                pid,
                retained: dropped as usize,
            });
            self.stats.gc_diffs_discarded += dropped;
            self.charge(pid, Category::Os, gc_per_diff.scale(dropped));
            let lmw = &mut self.procs[pid].lmw;
            for (_, segs) in lmw.segments.drain() {
                for s in segs {
                    self.pool.put_diff(s.diff);
                }
            }
            for (_, ups) in lmw.pending_updates.drain() {
                for (_, _, _, d) in ups {
                    self.pool.put_diff(d);
                }
            }
            lmw.known_notices.clear();
            lmw.applied.clear();
        }
    }

    // ------------------------------------------------------------------
    // Snapshot (verification only, uncharged)
    // ------------------------------------------------------------------

    pub(crate) fn lmw_snapshot_page(&self, page: PageId) -> PageBuf {
        let p0 = &self.procs[0];
        let mut buf = p0
            .store
            .frame(page)
            .map_or_else(|| self.image[page.index()].clone(), |f| f.data().clone());
        let floor = p0.store.frame(page).map_or(0, Frame::applied_through);
        let applied_w = |w: u16| -> u64 {
            p0.lmw
                .applied
                .get(&(page.0, w))
                .copied()
                .unwrap_or(0)
                .max(floor)
        };
        let notices = p0
            .lmw
            .known_notices
            .get(&page.0)
            .cloned()
            .unwrap_or_default();
        // Gather every relevant sealed segment plus each writer's unsealed
        // accumulation (as a virtual diff), then apply in interval order.
        let mut writers: Vec<u16> = notices
            .iter()
            .filter(|n| n.writer != 0)
            .map(|n| n.writer)
            .collect();
        writers.sort_unstable();
        writers.dedup();
        let mut to_apply: Vec<(u64, u64, u16, Diff)> = Vec::new();
        for w in writers {
            let since = applied_w(w);
            let proc = &self.procs[w as usize];
            if let Some(segs) = proc.lmw.segments.get(&page.0) {
                for s in segs {
                    if s.hi > since {
                        to_apply.push((s.hi, s.lo, w, s.diff.clone()));
                    }
                }
            }
            if let Some(&(lo, hi)) = proc.lmw.pending.get(&page.0) {
                if let Some(f) = proc.store.frame(page) {
                    if f.has_twin() && hi > since {
                        to_apply.push((hi, lo, w, f.diff_against_twin(page)));
                    }
                }
            }
        }
        to_apply.sort_by_key(|(hi, lo, w, _)| (*hi, *lo, *w));
        for (_, _, _, diff) in &to_apply {
            diff.apply_to(&mut buf);
        }
        buf
    }
}
