//! Home-based barrier protocols: `bar-i` and `bar-u`.
//!
//! Faithful to §2.2 of the paper:
//!
//! * every page has a **home**; updates are flushed to the home at the next
//!   barrier and the diffs are **immediately discarded** (short lifetimes);
//! * the **home effect**: the home's own modifications require no diff —
//!   only a local interrupt on the first write of each epoch;
//! * page coherence uses a **per-page scalar version index**, incremented
//!   once per epoch for a home write and once per applied diff; new
//!   versions are distributed via the barrier and drive invalidations;
//! * faults are serviced by fetching a **complete page copy from the home**
//!   (always exactly one request/reply pair);
//! * homes are assigned **at runtime**: pages not written by their initial
//!   owner but written by someone else migrate after the first iteration;
//! * `bar-u` adds copyset-driven **update pushes**: writers flush their
//!   diffs directly to every consumer in the page's copyset, and consumers
//!   apply them inside the barrier — no segv, no protection change.

use dsm_net::{FlushKind, ReliableKind};
use dsm_sim::{Category, Time};
use dsm_vm::{Diff, FaultKind, Frame, PageId, Protection};

use crate::check::CheckEvent;
use crate::drive::cluster::Cluster;
use crate::proto::overdrive::OdMode;

/// Wire bytes per (page, version) entry on barrier messages.
pub const BUMP_WIRE_BYTES: usize = 12;

/// In-flight one-way messages queued during the pre-barrier step and
/// consumed at release time, plus the barrier's version-bump ledger.
#[derive(Default)]
pub struct BarDeliveries {
    /// Diffs flushed to their home: `(home, page, diff, receiver leg)`.
    // audit: scratch: drained at release; barrier_core asserts it empty
    pub home_flushes: Vec<(usize, PageId, Diff, Time)>,
    /// Update pushes to consumers: `(dst, page, diff, receiver leg)`.
    // audit: scratch: drained at release; barrier_core asserts it empty
    pub bar_updates: Vec<(usize, PageId, Diff, Time)>,
    /// lmw-u update flushes: `(dst, page, writer, lo, hi, diff, receiver leg)`.
    // audit: scratch: drained at release; barrier_core asserts it empty
    pub lmw_updates: Vec<(usize, PageId, u16, u64, u64, Diff, Time)>,
    /// Pages bumped this barrier: `(page, old_version, new_version)`,
    /// page-sorted at collection time for deterministic iteration.
    // audit: scratch: cleared in barrier_core after homes fold the bumps
    pub bumps: Vec<(PageId, u32, u32)>,
    /// Who contributed each bump: `(writer, page)`. Lets a writer account
    /// for its own modifications when deciding whether its copy is current.
    // audit: scratch: cleared in barrier_core after homes fold the bumps
    pub writer_bumps: Vec<(usize, PageId)>,
}

impl BarDeliveries {
    /// Record one version bump contribution for `page`, returning nothing;
    /// consecutive bumps of the same page within one barrier extend the
    /// same ledger entry.
    pub(crate) fn bump(&mut self, page: PageId, versions: &mut [u32]) {
        let old = versions[page.index()];
        versions[page.index()] = old + 1;
        if let Some(e) = self.bumps.iter_mut().find(|e| e.0 == page) {
            e.2 = old + 1;
        } else {
            self.bumps.push((page, old, old + 1));
        }
    }
}

impl Cluster {
    // ------------------------------------------------------------------
    // Fault path
    // ------------------------------------------------------------------

    pub(crate) fn bar_fault(&mut self, pid: usize, page: PageId, kind: FaultKind) {
        self.charge_segv(pid);
        if kind.is_write() && self.od_mode == OdMode::Overdrive {
            // A trapped write during overdrive is by definition
            // unanticipated (anticipated pages were pre-enabled).
            self.od_unanticipated(pid, page);
        }
        if kind.needs_validation() {
            self.bar_fetch_page(pid, page);
        }
        if kind.is_write() {
            let home = self.homes[page.index()];
            // The home effect: the home never diffs its own writes — unless
            // bar-u must push them to a non-empty copyset.
            let need_twin = pid != home
                || (self.cfg.protocol.is_update()
                    && self.copyset(page).others(pid).next().is_some());
            if need_twin {
                if self.barr_twin_free(pid, page) {
                    // bar-r with a commuting-writer certificate: the delta
                    // can be captured from twin-free dirty tracking over
                    // the proven spans, so the twin (and its copy cost) is
                    // skipped entirely.
                    self.procs[pid].store.frame_mut(page).arm_dirty_tracking();
                    self.stats.region_twin_skips += 1;
                } else {
                    let cost = self.cfg.sim.costs.twin_create(self.page_size());
                    self.procs[pid]
                        .store
                        .frame_mut(page)
                        .make_twin_in(&mut self.pool);
                    self.charge(pid, Category::Os, cost);
                    self.stats.twins += 1;
                }
            }
            self.set_prot(pid, page, Protection::ReadWrite);
            self.procs[pid].dirty.push(page);
            if !self.migrated {
                self.note_write(pid, page);
            }
        }
    }

    /// Record first-iteration write behaviour for the migration decision.
    fn note_write(&mut self, pid: usize, page: PageId) {
        self.iter_writers.entry(page.0).or_default().insert(pid);
        let w = u16::try_from(pid).expect("pid exceeds u16 range");
        *self.iter_write_counts.entry((page.0, w)).or_insert(0) += 1;
    }

    /// Validate by fetching a complete copy from the home — "always exactly
    /// one request-reply pair".
    fn bar_fetch_page(&mut self, pid: usize, page: PageId) {
        let home = self.homes[page.index()];
        assert_ne!(pid, home, "a home page can never be invalid at its home");
        self.materialize_pristine(home, page);
        debug_assert!(
            self.procs[home].store.protection(page).readable(),
            "home copy must always be current"
        );
        let ps = self.page_size();
        let prep = Time::from_ns(self.cfg.sim.costs.page_prep_ns);
        let fixed = Time::from_ns(self.cfg.sim.costs.page_fault_fixed_ns);
        let now = self.procs[pid].clock.now();
        let d = self.net.fetch(
            pid,
            home,
            ReliableKind::PageRequest,
            0,
            ReliableKind::PageReply,
            ps,
            prep,
            now,
        );
        self.charge(pid, Category::Wait, d.wait + fixed);
        // The faulting process experiences any retransmission delay of
        // either leg of the round trip.
        self.procs[pid].clock.note_retrans(d.retrans_wait);
        if d.req_attempts > 1 {
            self.emit(CheckEvent::WireRetransmit {
                src: pid,
                dst: home,
                attempts: d.req_attempts,
            });
        }
        if d.rep_attempts > 1 {
            self.emit(CheckEvent::WireRetransmit {
                src: home,
                dst: pid,
                attempts: d.rep_attempts,
            });
        }
        self.charge(home, Category::Sigio, d.server_cpu);
        let version = self.versions[page.index()];
        {
            let (me, hm) = Cluster::pair_mut(&mut self.procs, pid, home);
            let src = hm.store.frame(page).expect("home frame present");
            let f = me.store.frame_mut(page);
            f.fill_from(src.data());
            f.set_version_seen(version);
        }
        self.set_prot(pid, page, Protection::Read);
        self.stats.remote_misses += 1;
        self.emit(CheckEvent::Fetch {
            pid,
            from: home,
            page: page.0,
        });
        if self.cfg.protocol.is_update() {
            // The home learns its consumers; distribution of copyset
            // changes piggybacks on the next barrier release.
            self.copyset_mut(page).insert(pid);
        }
    }

    // ------------------------------------------------------------------
    // Barrier hooks
    // ------------------------------------------------------------------

    /// End-of-epoch work: create and flush diffs, bump versions, re-arm
    /// write traps. Returns this process's bump-contribution count (its
    /// arrival payload).
    pub(crate) fn bar_pre_barrier(&mut self, pid: usize, reprotect: bool) -> usize {
        let ps = self.page_size();
        let dirty = core::mem::take(&mut self.procs[pid].dirty);
        let is_update = self.cfg.protocol.is_update();
        let mut contributions = 0usize;
        for page in dirty {
            let home = self.homes[page.index()];
            let tracked = self.procs[pid]
                .store
                .frame(page)
                .is_some_and(Frame::tracking);
            if tracked {
                // bar-r region path: capture the delta from the recorded
                // dirty ranges, grounded against the static certificate.
                if self.barr_pre_barrier_page(pid, page) {
                    contributions += 1;
                }
                if reprotect {
                    self.set_prot(pid, page, Protection::Read);
                }
                continue;
            }
            let has_twin = self.procs[pid]
                .store
                .frame(page)
                .is_some_and(Frame::has_twin);
            // The home effect decides at diff time: a home page with no
            // consumers never needs its modifications summarized, even if
            // overdrive armed a (pure-overhead) twin on it.
            let use_diff = has_twin
                && (pid != home || (is_update && self.copyset(page).others(pid).next().is_some()));
            if has_twin && !use_diff {
                self.procs[pid]
                    .store
                    .frame_mut(page)
                    .drop_twin_into(&mut self.pool);
            }
            if use_diff {
                let scan = self.cfg.sim.costs.diff_create(ps);
                self.charge(pid, Category::Os, scan);
                self.stats.diffs_created += 1;
                let diff = self.procs[pid]
                    .store
                    .frame_mut(page)
                    .diff_against_twin_in(page, &mut self.pool);
                self.procs[pid]
                    .store
                    .frame_mut(page)
                    .drop_twin_into(&mut self.pool);
                if diff.is_empty() {
                    self.stats.empty_diffs += 1;
                    if self.od_mode == OdMode::Overdrive {
                        self.stats.overdrive_zero_diffs += 1;
                    }
                } else {
                    let old = self.versions[page.index()];
                    self.bar_deliveries.bump(page, &mut self.versions);
                    let new = self.versions[page.index()];
                    self.emit(CheckEvent::VersionBump {
                        page: page.0,
                        old,
                        new,
                    });
                    self.bar_deliveries.writer_bumps.push((pid, page));
                    contributions += 1;
                    if pid != home {
                        let sent_at = self.procs[pid].clock.now();
                        let tr = self.net.push_reliable(
                            pid,
                            home,
                            ReliableKind::DiffFlushHome,
                            diff.wire_bytes(),
                            sent_at,
                        );
                        self.charge(pid, Category::Os, tr.sender);
                        self.stats
                            .note_flush(page.index(), diff.wire_bytes() as u64);
                        if tr.attempts > 1 {
                            self.emit(CheckEvent::WireRetransmit {
                                src: pid,
                                dst: home,
                                attempts: tr.attempts,
                            });
                        }
                        self.bar_deliveries.home_flushes.push((
                            home,
                            page,
                            diff.clone(),
                            tr.receiver,
                        ));
                    }
                    if is_update {
                        let cs = self.copyset(page).clone();
                        self.emit(CheckEvent::UpdateFlush {
                            writer: pid,
                            page: page.0,
                            copyset: &cs,
                        });
                        let members: Vec<usize> = cs.others(pid).filter(|&q| q != home).collect();
                        for q in members {
                            let now = self.procs[pid].clock.now();
                            let out = self.net.push_update(
                                pid,
                                q,
                                FlushKind::UpdateFlush,
                                diff.wire_bytes(),
                                now,
                            );
                            self.charge(pid, Category::Os, out.transit.sender);
                            self.stats
                                .note_flush(page.index(), diff.wire_bytes() as u64);
                            if out.delivered {
                                self.bar_deliveries.bar_updates.push((
                                    q,
                                    page,
                                    diff.clone(),
                                    out.transit.receiver,
                                ));
                                if out.duplicated {
                                    // The faulty wire delivered the flush
                                    // twice: queue a second, identical copy.
                                    // Self-validation sees one update too
                                    // many and falls back to invalidation —
                                    // slower, never wrong.
                                    self.emit(CheckEvent::DupDelivery {
                                        writer: pid,
                                        page: page.0,
                                        dst: q,
                                    });
                                    self.bar_deliveries.bar_updates.push((
                                        q,
                                        page,
                                        diff.clone(),
                                        out.transit.receiver,
                                    ));
                                }
                            }
                        }
                    }
                }
                // The clones rode into the delivery queues; the original's
                // storage goes back to the free-lists.
                self.pool.put_diff(diff);
            } else {
                // Home wrote, no consumers needing a diff: version bump only
                // ("modifications made by the home node are merely noted
                // locally").
                debug_assert_eq!(pid, home, "non-home dirty pages always have twins");
                let old = self.versions[page.index()];
                self.bar_deliveries.bump(page, &mut self.versions);
                let new = self.versions[page.index()];
                self.emit(CheckEvent::VersionBump {
                    page: page.0,
                    old,
                    new,
                });
                self.bar_deliveries.writer_bumps.push((pid, page));
                contributions += 1;
            }
            if reprotect {
                self.set_prot(pid, page, Protection::Read);
            }
        }
        contributions
    }

    /// Post-release work: homes apply incoming diff flushes, consumers
    /// apply update pushes, everyone else invalidates stale copies.
    pub(crate) fn bar_post_release(&mut self, pid: usize) {
        // 1. Apply diff flushes addressed to this process as home; the
        //    diffs are then dropped — their entire lifetime was one barrier.
        let all = core::mem::take(&mut self.bar_deliveries.home_flushes);
        let (mine, rest): (Vec<_>, Vec<_>) = all.into_iter().partition(|(h, ..)| *h == pid);
        self.bar_deliveries.home_flushes = rest;
        let mine = self.delivery_order(mine, |t| t.1 .0);
        for (_, page, diff, recv) in mine {
            self.charge(pid, Category::Sigio, recv);
            let cost = self.cfg.sim.costs.diff_apply(diff.payload_bytes());
            self.charge(pid, Category::Os, cost);
            self.materialize_home_frame(pid, page);
            self.procs[pid].store.frame_mut(page).apply_diff(&diff);
            self.pool.put_diff(diff);
        }

        // 2. The home's copy is current for every page bumped this barrier.
        let bumps: Vec<(PageId, u32, u32)> = self.bar_deliveries.bumps.clone();
        for &(page, _, newv) in &bumps {
            if self.homes[page.index()] == pid {
                self.materialize_home_frame(pid, page);
                self.procs[pid].store.frame_mut(page).set_version_seen(newv);
            }
        }

        // 3. Self-validation and update application. A writer's copy is
        //    current once its own contributions plus every received update
        //    cover the page's version delta; a pure consumer needs every
        //    writer's flush (lost flushes fall back to invalidation). bar-i
        //    processes receive no updates, so only sole-writer copies
        //    self-validate.
        let all = core::mem::take(&mut self.bar_deliveries.bar_updates);
        let (mine, rest): (Vec<_>, Vec<_>) = all.into_iter().partition(|(d, ..)| *d == pid);
        self.bar_deliveries.bar_updates = rest;
        let mine = self.delivery_order(mine, |t| t.1 .0);
        let mut by_page: Vec<(PageId, Vec<Diff>)> = Vec::new();
        for (_, page, diff, recv) in mine {
            self.charge(pid, Category::Sigio, recv);
            match by_page.iter_mut().find(|(p, _)| *p == page) {
                Some((_, v)) => v.push(diff),
                None => by_page.push((page, vec![diff])),
            }
        }
        for &(page, oldv, newv) in &bumps {
            if self.homes[page.index()] == pid {
                continue;
            }
            let received: &[Diff] = by_page
                .iter()
                .find(|(p, _)| *p == page)
                .map_or(&[], |(_, v)| v.as_slice());
            // bar-r certified page: elided pushes must not read as lost
            // flushes, so the expectation counts only writers that
            // actually push to this process.
            let expected = self.barr_expected_updates(pid, page).unwrap_or_else(|| {
                let my_contrib = self
                    .bar_deliveries
                    .writer_bumps
                    .iter()
                    .filter(|&&(w, p)| w == pid && p == page)
                    .count();
                (newv - oldv) as usize - my_contrib
            });
            let current = {
                let f = self.procs[pid].store.frame(page);
                f.is_some_and(|f| f.prot().readable() && f.version_seen() == oldv)
                    && received.len() == expected
            };
            if current {
                for diff in received {
                    let cost = self.cfg.sim.costs.diff_apply(diff.payload_bytes());
                    self.charge(pid, Category::Os, cost);
                }
                let f = self.procs[pid].store.frame_mut(page);
                for diff in received {
                    f.apply_diff(diff);
                }
                f.set_version_seen(newv);
            }
        }
        // The update diffs' lifetime ends here; recycle their storage.
        for (_, diffs) in by_page {
            for d in diffs {
                self.pool.put_diff(d);
            }
        }

        // 4. Invalidate remaining stale copies.
        let notice_cost = Time::from_ns(self.cfg.sim.costs.write_notice_ns);
        for &(page, _, newv) in &bumps {
            self.charge(pid, Category::Os, notice_cost);
            if self.homes[page.index()] == pid {
                continue;
            }
            let stale = self.procs[pid]
                .store
                .frame(page)
                .is_some_and(|f| f.prot().readable() && f.version_seen() < newv);
            if stale {
                self.set_prot(pid, page, Protection::Invalid);
            }
        }
    }

    /// Materialize a frame at its home from the initial image. Unlike the
    /// pristine rule, a home materialization is *always* valid: if the home
    /// never touched the page and no flush preceded this one, the image is
    /// by definition the current content.
    fn materialize_home_frame(&mut self, pid: usize, page: PageId) {
        if self.procs[pid].store.frame(page).is_some() {
            return;
        }
        let image = &self.image[page.index()];
        let f = self.procs[pid].store.frame_mut(page);
        f.fill_from(image);
        f.set_prot(Protection::Read);
        f.set_version_seen(1);
    }

    // ------------------------------------------------------------------
    // Runtime home migration (§2.2.1, third extension)
    // ------------------------------------------------------------------

    /// "We migrate any pages that have not been written by their initial
    /// owner, but have been written by at least one other process", using
    /// behaviour collected during the first iteration. Decisions ride on
    /// the barrier release; the page content moves home-to-home.
    pub(crate) fn bar_migrate(&mut self) {
        if self.migrated || !self.cfg.migration {
            return;
        }
        self.migrated = true;
        let ps = self.page_size();
        for pg in 0..self.seg.npages() {
            let page = PageId(pg as u32);
            let Some(writers) = self.iter_writers.get(&page.0) else {
                continue;
            };
            let old_home = self.homes[pg];
            if writers.is_empty() || writers.contains(old_home) {
                continue;
            }
            // Heaviest writer wins; ties go to the lowest pid.
            let mut new_home = usize::MAX;
            let mut best = 0u32;
            for w in writers.iter() {
                let key = (page.0, u16::try_from(w).expect("pid exceeds u16 range"));
                let c = self.iter_write_counts.get(&key).copied().unwrap_or(0);
                if c > best {
                    best = c;
                    new_home = w;
                }
            }
            debug_assert_ne!(new_home, usize::MAX);
            // Hand over the current content (the old home is current by
            // construction: all diffs were flushed to it).
            self.materialize_home_frame(old_home, page);
            let sent_at = self.procs[old_home].clock.now();
            let tr =
                self.net
                    .push_reliable(old_home, new_home, ReliableKind::PageMigrate, ps, sent_at);
            self.charge(old_home, Category::Os, tr.sender);
            if tr.attempts > 1 {
                self.emit(CheckEvent::WireRetransmit {
                    src: old_home,
                    dst: new_home,
                    attempts: tr.attempts,
                });
            }
            self.charge(new_home, Category::Sigio, tr.receiver);
            let version = self.versions[pg];
            {
                let (old_p, new_p) = Cluster::pair_mut(&mut self.procs, old_home, new_home);
                let src = old_p.store.frame(page).expect("old home frame");
                let f = new_p.store.frame_mut(page);
                f.fill_from(src.data());
                f.set_version_seen(version);
                if !f.prot().readable() {
                    f.set_prot(Protection::Read);
                }
                // Drop any stale twin at the new home: its next write will
                // re-evaluate the home effect.
                f.drop_twin();
            }
            self.homes[pg] = new_home;
            self.stats.migrations += 1;
        }
    }
}
