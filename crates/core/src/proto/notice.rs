//! Write notices and diff naming (homeless LRC).
//!
//! "Structures called write notices are distributed to other processes via
//! existing synchronization (barrier) messages. Each write notice informs
//! the recipient that a shared page has been modified ... The write notice
//! also names the diff that needs to be applied" (§2.1.1).

use dsm_vm::PageId;

/// A notice that `writer` modified `page` during barrier `epoch`, naming
/// the diff `(page, epoch, writer)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct WriteNotice {
    pub page: u32,
    pub writer: u16,
    pub epoch: u64,
}

/// Approximate wire size of one notice within a barrier message.
pub const NOTICE_WIRE_BYTES: usize = 16;

impl WriteNotice {
    pub fn new(page: PageId, writer: usize, epoch: u64) -> WriteNotice {
        WriteNotice {
            page: page.0,
            writer: writer as u16,
            epoch,
        }
    }

    pub fn page_id(&self) -> PageId {
        PageId(self.page)
    }

    /// The diff this notice names.
    pub fn diff_key(&self) -> DiffKey {
        DiffKey {
            page: self.page,
            epoch: self.epoch,
            writer: self.writer,
        }
    }
}

/// Unique name of a diff: which page, which interval, which writer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct DiffKey {
    pub page: u32,
    pub epoch: u64,
    pub writer: u16,
}

impl DiffKey {
    pub fn page_id(&self) -> PageId {
        PageId(self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notice_names_its_diff() {
        let n = WriteNotice::new(PageId(7), 3, 42);
        let k = n.diff_key();
        assert_eq!(k.page, 7);
        assert_eq!(k.epoch, 42);
        assert_eq!(k.writer, 3);
        assert_eq!(n.page_id(), PageId(7));
        assert_eq!(k.page_id(), PageId(7));
    }

    #[test]
    fn diff_keys_order_by_page_then_epoch() {
        let a = DiffKey {
            page: 1,
            epoch: 5,
            writer: 0,
        };
        let b = DiffKey {
            page: 1,
            epoch: 6,
            writer: 0,
        };
        let c = DiffKey {
            page: 2,
            epoch: 0,
            writer: 0,
        };
        assert!(a < b && b < c);
    }
}
