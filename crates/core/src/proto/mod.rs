//! Protocol implementations.
//!
//! * [`copyset`] — per-page processor bitmaps.
//! * [`notice`] — write notices and diff naming for the homeless protocols.
//! * [`lmw`] — homeless multi-writer LRC (`lmw-i`, `lmw-u`): per-process
//!   diff stores with long-lived diffs, fault-time diff fetching, stored
//!   out-of-order updates, garbage collection.
//! * [`bar`] — home-based barrier protocols (`bar-i`, `bar-u`): version
//!   indices, diff flushes to homes, whole-page fault service, runtime home
//!   migration, copyset-driven update pushes.
//! * [`barr`] — the region-granularity variant (`bar-r`): twin-free
//!   deltas and push elision on pages with a static commuting-writer
//!   certificate.
//! * [`overdrive`] — write-set prediction and the `bar-s` / `bar-m`
//!   steady-state trap elimination.
//!
//! The protocol logic is implemented as `impl Cluster` blocks (the
//! simulation owns every process, so cross-process steps are plain method
//! calls); this module holds their state types and pure helpers.

pub mod bar;
pub mod barr;
pub mod copyset;
pub mod lmw;
pub mod notice;
pub mod overdrive;

pub use copyset::CopySet;
pub use notice::{DiffKey, WriteNotice};
