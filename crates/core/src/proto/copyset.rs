//! Per-page copysets.
//!
//! "Accesses to shared pages are tracked by using per-page copysets, which
//! are bitmaps that specify which processors cache a given page" (§2.1.2).
//!
//! The paper's prototype ran on 8 nodes, so a 64-bit bitmap was ample.
//! Making node count a first-class axis (ROADMAP: up to 1024) needs a set
//! with no 64-pid ceiling whose cost still tracks *occupancy*, not cluster
//! size: the scaling prover certifies that for every app the number of
//! sharers per page is bounded by a small constant independent of N, so
//! the common case must stay allocation-free. The representation is
//! therefore hybrid: pids below 64 live in an inline bitmap word, pids 64
//! and above spill into a sorted vector. A set that never sees a pid ≥ 64
//! — every run at the paper's scale — never allocates, and its
//! [`CopySet::digest_words`] stream is exactly the single bitmap word the
//! pre-scaling format hashed, keeping all committed results byte-stable.
/// A set of processor ids: inline bitmap for pids 0..64, sorted spillover
/// for the rest. Equality, hashing, and ordering are canonical (the spill
/// vector is kept sorted and duplicate-free, and never holds pids < 64).
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash, PartialOrd, Ord)]
pub struct CopySet {
    /// Bit `p` set iff process `p < 64` is a member.
    lo: u64,
    /// Members `>= 64`, ascending, no duplicates.
    // audit: wholesale(hash): digest_words() folds the bitmap word and every
    // spill entry alike
    spill: Vec<u16>,
}

impl CopySet {
    /// The empty set.
    pub const EMPTY: CopySet = CopySet {
        lo: 0,
        spill: Vec::new(),
    };

    /// A singleton set.
    pub fn single(pid: usize) -> CopySet {
        let mut s = CopySet::EMPTY;
        s.insert(pid);
        s
    }

    #[inline]
    pub fn insert(&mut self, pid: usize) {
        if pid < 64 {
            self.lo |= 1 << pid;
        } else {
            let pid = u16::try_from(pid).expect("pid exceeds u16 range");
            if let Err(at) = self.spill.binary_search(&pid) {
                self.spill.insert(at, pid);
            }
        }
    }

    #[inline]
    pub fn remove(&mut self, pid: usize) {
        if pid < 64 {
            self.lo &= !(1 << pid);
        } else if let Ok(pid) = u16::try_from(pid) {
            if let Ok(at) = self.spill.binary_search(&pid) {
                self.spill.remove(at);
            }
        }
    }

    #[inline]
    pub fn contains(&self, pid: usize) -> bool {
        if pid < 64 {
            self.lo & (1 << pid) != 0
        } else {
            u16::try_from(pid).is_ok_and(|p| self.spill.binary_search(&p).is_ok())
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == 0 && self.spill.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.lo.count_ones() as usize + self.spill.len()
    }

    /// Union in place.
    pub fn union_with(&mut self, other: &CopySet) {
        self.lo |= other.lo;
        if !other.spill.is_empty() {
            for &p in &other.spill {
                if let Err(at) = self.spill.binary_search(&p) {
                    self.spill.insert(at, p);
                }
            }
        }
    }

    /// Members of `self` not in `other` (set difference).
    #[must_use]
    pub fn minus(&self, other: &CopySet) -> CopySet {
        CopySet {
            lo: self.lo & !other.lo,
            spill: self
                .spill
                .iter()
                .copied()
                .filter(|p| other.spill.binary_search(p).is_err())
                .collect(),
        }
    }

    /// Iterate members in ascending pid order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut bits = self.lo;
        let inline = std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let p = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(p)
            }
        });
        inline.chain(self.spill.iter().map(|&p| usize::from(p)))
    }

    /// Members other than `pid`, ascending.
    pub fn others(&self, pid: usize) -> impl Iterator<Item = usize> + '_ {
        self.iter().filter(move |&p| p != pid)
    }

    /// The member with the lowest pid, if any.
    pub fn first(&self) -> Option<usize> {
        if self.lo != 0 {
            Some(self.lo.trailing_zeros() as usize)
        } else {
            self.spill.first().map(|&p| usize::from(p))
        }
    }

    /// The canonical word stream digests and structural hashes fold. A set
    /// with no spillover members yields exactly one word — the inline
    /// bitmap — which is bit-identical to the raw-`u64` stream the
    /// pre-scaling format hashed, so every committed digest over runs with
    /// fewer than 64 processes is unchanged. Spillover members follow as
    /// one word each, ascending.
    pub fn digest_words(&self) -> impl Iterator<Item = u64> + '_ {
        std::iter::once(self.lo).chain(self.spill.iter().map(|&p| u64::from(p)))
    }

    /// Heap bytes resident for this set (zero without spillover). The
    /// scaling prover's table-memory formulas count these, so the
    /// definition is part of the cross-validated surface.
    pub fn heap_bytes(&self) -> usize {
        self.spill.capacity() * size_of::<u16>()
    }

    /// Encode for a snapshot: member count, then each pid ascending.
    pub fn encode_state(&self, w: &mut dsm_sim::SnapWriter) {
        w.usize(self.len());
        for p in self.iter() {
            w.u16(u16::try_from(p).expect("pid exceeds u16 range"));
        }
    }

    /// Decode a [`CopySet::encode_state`] capture.
    pub fn decode_state(r: &mut dsm_sim::SnapReader<'_>) -> CopySet {
        let n = r.usize();
        let mut s = CopySet::EMPTY;
        for _ in 0..n {
            s.insert(usize::from(r.u16()));
        }
        s
    }
}

impl FromIterator<usize> for CopySet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = CopySet::EMPTY;
        for pid in iter {
            s.insert(pid);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = CopySet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(7);
        assert!(s.contains(3) && s.contains(7) && !s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = CopySet::EMPTY;
        s.insert(5);
        s.insert(5);
        s.insert(100);
        s.insert(100);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_ascending() {
        let s: CopySet = [6, 1, 4].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 6]);
    }

    #[test]
    fn others_excludes_self() {
        let s: CopySet = [0, 2, 5].into_iter().collect();
        assert_eq!(s.others(2).collect::<Vec<_>>(), vec![0, 5]);
        assert_eq!(s.others(1).collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn union_and_first() {
        let mut a: CopySet = [1, 2].into_iter().collect();
        let b: CopySet = [2, 6].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 6]);
        assert_eq!(a.first(), Some(1));
        assert_eq!(CopySet::EMPTY.first(), None);
    }

    #[test]
    fn boundary_pid_63() {
        let mut s = CopySet::EMPTY;
        s.insert(63);
        assert!(s.contains(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn single_constructor() {
        let s = CopySet::single(9);
        assert_eq!(s.len(), 1);
        assert!(s.contains(9));
    }

    #[test]
    fn spillover_past_64() {
        let s: CopySet = [2, 63, 64, 200, 1000].into_iter().collect();
        assert_eq!(s.len(), 5);
        assert!(s.contains(64) && s.contains(1000) && !s.contains(65));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 63, 64, 200, 1000]);
        let mut t = s.clone();
        t.remove(200);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![2, 63, 64, 1000]);
        assert_eq!(CopySet::single(64).first(), Some(64));
    }

    #[test]
    fn minus_is_pointwise_difference() {
        let a: CopySet = [1, 5, 64, 100].into_iter().collect();
        let b: CopySet = [5, 100, 200].into_iter().collect();
        let d = a.minus(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn digest_words_match_inline_bitmap() {
        let s: CopySet = [1, 3].into_iter().collect();
        assert_eq!(s.digest_words().collect::<Vec<_>>(), vec![0b1010]);
        let t: CopySet = [1, 70].into_iter().collect();
        assert_eq!(t.digest_words().collect::<Vec<_>>(), vec![0b10, 70]);
        assert!(s.heap_bytes() == 0);
    }
}
