//! Per-page copysets.
//!
//! "Accesses to shared pages are tracked by using per-page copysets, which
//! are bitmaps that specify which processors cache a given page" (§2.1.2).

/// A set of processor ids, as a 64-bit bitmap.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct CopySet(u64);

impl CopySet {
    /// The empty set.
    pub const EMPTY: CopySet = CopySet(0);

    /// A singleton set.
    pub fn single(pid: usize) -> CopySet {
        let mut s = CopySet::EMPTY;
        s.insert(pid);
        s
    }

    /// The raw bitmap (bit `p` set iff process `p` is a member).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstruct a set from its raw bitmap.
    #[inline]
    pub fn from_bits(bits: u64) -> CopySet {
        CopySet(bits)
    }

    #[inline]
    pub fn insert(&mut self, pid: usize) {
        debug_assert!(pid < 64);
        self.0 |= 1 << pid;
    }

    #[inline]
    pub fn remove(&mut self, pid: usize) {
        debug_assert!(pid < 64);
        self.0 &= !(1 << pid);
    }

    #[inline]
    pub fn contains(&self, pid: usize) -> bool {
        debug_assert!(pid < 64);
        self.0 & (1 << pid) != 0
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Union in place.
    #[inline]
    pub fn union_with(&mut self, other: CopySet) {
        self.0 |= other.0;
    }

    /// Iterate members in ascending pid order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..64).filter(move |i| bits & (1 << i) != 0)
    }

    /// Members other than `pid`, ascending.
    pub fn others(&self, pid: usize) -> impl Iterator<Item = usize> + '_ {
        self.iter().filter(move |&p| p != pid)
    }

    /// The member with the lowest pid, if any.
    pub fn first(&self) -> Option<usize> {
        if self.is_empty() {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }
}

impl FromIterator<usize> for CopySet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = CopySet::EMPTY;
        for pid in iter {
            s.insert(pid);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = CopySet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(7);
        assert!(s.contains(3) && s.contains(7) && !s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = CopySet::EMPTY;
        s.insert(5);
        s.insert(5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_ascending() {
        let s: CopySet = [6, 1, 4].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 6]);
    }

    #[test]
    fn others_excludes_self() {
        let s: CopySet = [0, 2, 5].into_iter().collect();
        assert_eq!(s.others(2).collect::<Vec<_>>(), vec![0, 5]);
        assert_eq!(s.others(1).collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn union_and_first() {
        let mut a: CopySet = [1, 2].into_iter().collect();
        let b: CopySet = [2, 6].into_iter().collect();
        a.union_with(b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 6]);
        assert_eq!(a.first(), Some(1));
        assert_eq!(CopySet::EMPTY.first(), None);
    }

    #[test]
    fn boundary_pid_63() {
        let mut s = CopySet::EMPTY;
        s.insert(63);
        assert!(s.contains(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn single_constructor() {
        let s = CopySet::single(9);
        assert_eq!(s.len(), 1);
        assert!(s.contains(9));
    }
}
