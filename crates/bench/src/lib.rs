//! # dsm-bench — the paper-reproduction harness
//!
//! One binary per table/figure of the paper's evaluation section:
//!
//! * `table1` — Table 1 "Base Statistics" (diffs, remote misses, messages,
//!   data KB for lmw-i / lmw-u / bar-i / bar-u across the 8 applications),
//! * `fig2` — Figure 2 "8-Proc Speedups",
//! * `fig3` — Figure 3 "Time Breakdown for Bar-u",
//! * `fig4` — Figure 4 "Overdrive Speedups" (7 applications, no barnes),
//! * `summary` — the paper's §3.3/§5.1 headline ratios, paper vs measured,
//! * `sweep` — ablations (process count, page size, stress model,
//!   migration, flush loss).
//!
//! The library provides the shared run matrix (host-parallel across
//! independent runs), table formatting, and the paper's reference numbers.

#![forbid(unsafe_code)]

pub mod harness;
pub mod paper;
pub mod quick;
pub mod table;

pub use harness::{run_matrix, run_one, Outcome, RunPlan};
