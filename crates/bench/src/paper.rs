//! The paper's published numbers, for paper-vs-measured comparison.
//!
//! Table 1 is transcribed exactly from the paper. The figures are bar
//! charts without printed values; `FIG2_APPROX` therefore records bar
//! heights read off Figure 2 (the paper states swm's speedup is "closer to
//! 1.8", anchoring that column), and the Figure 4 deltas use the percentages
//! the text gives (§5.1: bar-s ≈ bar-u + 2%, bar-m ≈ + 34%).
//!
//! Absolute event counts depend on problem sizes and iteration counts we
//! cannot exactly reconstruct (the paper's application-parameter table is
//! missing from the source — its Word artifact prints "Error! Reference
//! source not found."), so the *shape* comparisons in `summary` are the
//! meaningful ones: who wins, by roughly what factor, and in which
//! direction each protocol moves each column.

/// One application row of the paper's Table 1.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    pub app: &'static str,
    /// Diff creations for lmw-i, lmw-u, bar-i, bar-u.
    pub diffs: [u64; 4],
    /// Remote misses.
    pub misses: [u64; 4],
    /// Messages.
    pub messages: [u64; 4],
    /// Data in kilobytes.
    pub data_kb: [u64; 4],
}

/// The paper's Table 1: Base Statistics.
pub const TABLE1: [Table1Row; 8] = [
    Table1Row {
        app: "barnes",
        diffs: [3261, 3261, 2688, 3274],
        misses: [4185, 0, 3789, 0],
        messages: [16005, 2269, 4048, 1968],
        data_kb: [28604, 28918, 33187, 27106],
    },
    Table1Row {
        app: "expl",
        diffs: [632, 642, 270, 648],
        misses: [674, 0, 390, 0],
        messages: [849, 247, 595, 277],
        data_kb: [1912, 1930, 3423, 1945],
    },
    Table1Row {
        app: "fft",
        diffs: [2720, 2464, 140, 2464],
        misses: [4640, 0, 4620, 0],
        messages: [5627, 2582, 4767, 1512],
        data_kb: [36545, 41691, 37339, 32546],
    },
    Table1Row {
        app: "jacobi",
        diffs: [179, 198, 77, 220],
        misses: [251, 0, 210, 0],
        messages: [412, 293, 404, 293],
        data_kb: [1236, 1294, 2259, 1543],
    },
    Table1Row {
        app: "shallow",
        diffs: [5501, 5929, 2882, 5929],
        misses: [6233, 198, 3420, 0],
        messages: [8153, 3637, 5044, 3439],
        data_kb: [1412, 790, 27890, 783],
    },
    Table1Row {
        app: "sor",
        diffs: [126, 126, 0, 126],
        misses: [126, 0, 126, 0],
        messages: [196, 183, 196, 178],
        data_kb: [283, 285, 1024, 264],
    },
    Table1Row {
        app: "swm",
        diffs: [4408, 4858, 4873, 7462],
        misses: [5159, 0, 2274, 0],
        messages: [6062, 2007, 3709, 2139],
        data_kb: [8798, 9319, 32218, 19204],
    },
    Table1Row {
        app: "tomcat",
        diffs: [898, 899, 413, 911],
        misses: [1084, 0, 625, 0],
        messages: [1343, 547, 992, 541],
        data_kb: [3649, 3600, 5931, 3890],
    },
];

/// Approximate 8-processor speedups read off the Figure 2 bars
/// (lmw-i, lmw-u, bar-i, bar-u). The paper prints no numbers; swm is
/// anchored by the text ("the actual speedup is closer to 1.8").
pub const FIG2_APPROX: [(&str, [f64; 4]); 8] = [
    ("barnes", [2.4, 1.6, 2.9, 3.4]),
    ("expl", [4.0, 5.0, 5.3, 6.0]),
    ("fft", [2.0, 3.4, 2.6, 4.4]),
    ("jacobi", [4.8, 5.8, 5.7, 5.9]),
    ("shallow", [3.0, 4.4, 3.9, 5.4]),
    ("sor", [5.9, 6.4, 6.5, 6.9]),
    ("swm", [1.2, 1.0, 1.4, 1.8]),
    ("tomcat", [3.9, 4.8, 4.9, 5.5]),
];

/// §3.3 / §5.1 headline ratios.
pub struct Headlines {
    /// bar-i creates this fraction fewer diffs than lmw-i (0.36 = 36%).
    pub bar_i_fewer_diffs: f64,
    /// bar-i takes this fraction fewer remote misses than lmw-i.
    pub bar_i_fewer_misses: f64,
    /// bar-i sends this fraction fewer messages than lmw-i.
    pub bar_i_fewer_messages: f64,
    /// bar-i sends this fraction more data than lmw-i.
    pub bar_i_more_data: f64,
    /// bar-u speedup gain over the better lmw protocol.
    pub bar_u_gain: f64,
    /// bar-s speedup gain over bar-u.
    pub bar_s_gain: f64,
    /// bar-m speedup gain over bar-s/bar-u level.
    pub bar_m_gain: f64,
}

/// The paper's reported averages.
pub const PAPER_HEADLINES: Headlines = Headlines {
    bar_i_fewer_diffs: 0.36,
    bar_i_fewer_misses: 0.31,
    bar_i_fewer_messages: 0.49,
    bar_i_more_data: 0.74,
    bar_u_gain: 0.19,
    bar_s_gain: 0.02,
    bar_m_gain: 0.34,
};

/// Geometric-mean ratio of `b[i] / a[i]` minus one (a signed "average
/// relative change"), skipping pairs with zeros.
pub fn mean_rel_change(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x > 0.0 && y > 0.0 {
            log_sum += (y / x).ln();
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_complete() {
        assert_eq!(TABLE1.len(), 8);
        let names: Vec<&str> = TABLE1.iter().map(|r| r.app).collect();
        assert_eq!(
            names,
            vec!["barnes", "expl", "fft", "jacobi", "shallow", "sor", "swm", "tomcat"]
        );
    }

    #[test]
    fn update_columns_have_zero_misses_except_shallow_lu() {
        for row in &TABLE1 {
            assert_eq!(row.misses[3], 0, "{}: bar-u misses", row.app);
            if row.app != "shallow" {
                assert_eq!(row.misses[1], 0, "{}: lmw-u misses", row.app);
            }
        }
        // The paper's sole exception: "a small number for shallow running
        // on lmw-u".
        assert_eq!(TABLE1[4].misses[1], 198);
    }

    #[test]
    fn paper_home_effect_in_reference_data() {
        // bar-i creates fewer diffs than lmw-i for all but swm.
        for row in &TABLE1 {
            if row.app != "swm" {
                assert!(row.diffs[2] <= row.diffs[0], "{}", row.app);
            }
        }
    }

    #[test]
    fn mean_rel_change_basics() {
        assert!((mean_rel_change(&[100.0], &[64.0]) + 0.36).abs() < 1e-9);
        assert!((mean_rel_change(&[2.0, 8.0], &[4.0, 16.0]) - 1.0).abs() < 1e-9);
        assert_eq!(mean_rel_change(&[0.0], &[5.0]), 0.0);
    }

    #[test]
    fn fig2_swm_is_anchored_at_1_8() {
        let swm = FIG2_APPROX.iter().find(|(a, _)| *a == "swm").unwrap();
        assert!((swm.1[3] - 1.8).abs() < 1e-9);
    }
}
