//! The run matrix: execute (application × protocol) combinations, with
//! sequential baselines for speedups, in parallel across host threads.
//!
//! Parallelism is capped at the host's `available_parallelism`: a full
//! matrix is dozens of runs, and one thread per run just thrashes the
//! scheduler (and the memory bus — every run owns page-sized buffers).
//! A shared atomic cursor over the plan list keeps the workers busy
//! without any per-run thread spawn beyond the cap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dsm_apps::{all_apps, AppSpec, Scale};
use dsm_core::{run_app, ProtocolKind, RunConfig, RunReport};
use dsm_sim::Time;

/// Run `worker` over `items` on at most `available_parallelism` threads,
/// preserving item order in the results. The work queue is an atomic
/// cursor: each worker claims the next unclaimed index until none remain.
fn run_capped<T: Sync, R: Send>(items: &[T], worker: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = worker(&items[i]);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("worker ran"))
        .collect()
}

/// One planned run.
#[derive(Clone)]
pub struct RunPlan {
    pub app: &'static str,
    pub protocol: ProtocolKind,
    pub scale: Scale,
    pub nprocs: usize,
    /// Configuration tweak applied after defaults (ablations).
    pub tweak: Option<fn(&mut RunConfig)>,
}

impl RunPlan {
    pub fn new(app: &'static str, protocol: ProtocolKind, scale: Scale, nprocs: usize) -> RunPlan {
        RunPlan {
            app,
            protocol,
            scale,
            nprocs,
            tweak: None,
        }
    }

    fn config(&self) -> RunConfig {
        let mut cfg = RunConfig::with_nprocs(self.protocol, self.nprocs);
        if let Some(t) = self.tweak {
            t(&mut cfg);
        }
        cfg
    }
}

/// One completed run.
pub struct Outcome {
    pub plan: RunPlan,
    pub report: RunReport,
}

impl Outcome {
    pub fn speedup(&self) -> f64 {
        self.report.speedup().unwrap_or(f64::NAN)
    }
}

/// Execute one plan (plus its sequential baseline when `baseline` is set).
pub fn run_one(plan: &RunPlan, baseline: Option<Time>) -> Outcome {
    let spec = dsm_apps::app_by_name(plan.app).unwrap_or_else(|| panic!("no app {}", plan.app));
    let mut app = spec.build(plan.scale);
    let mut report = run_app(app.as_mut(), plan.config());
    if let Some(seq) = baseline {
        report = report.with_baseline(seq);
    }
    Outcome {
        plan: plan.clone(),
        report,
    }
}

/// Run the sequential baseline for `spec` at `scale` and return its
/// measured time and checksum.
pub fn run_baseline(
    spec: &AppSpec,
    scale: Scale,
    tweak: Option<fn(&mut RunConfig)>,
) -> (Time, f64) {
    let mut app = spec.build(scale);
    let mut cfg = RunConfig::with_nprocs(ProtocolKind::Seq, 1);
    if let Some(t) = tweak {
        t(&mut cfg);
        cfg.protocol = ProtocolKind::Seq;
        cfg.sim.nprocs = 1;
    }
    let report = run_app(app.as_mut(), cfg);
    (report.elapsed, report.checksum)
}

/// Execute every (app × protocol) combination, sharing one sequential
/// baseline per application, in parallel across host threads. Also checks
/// every run's checksum against the baseline — a protocol bug fails loudly
/// here, not as a quietly wrong table.
pub fn run_matrix(
    apps: &[&'static str],
    protocols: &[ProtocolKind],
    scale: Scale,
    nprocs: usize,
) -> Vec<Outcome> {
    let specs: Vec<AppSpec> = all_apps()
        .into_iter()
        .filter(|a| apps.contains(&a.name))
        .collect();

    // Baselines in parallel (capped).
    let baselines: HashMap<&'static str, (Time, f64)> =
        run_capped(&specs, |spec| (spec.name, run_baseline(spec, scale, None)))
            .into_iter()
            .collect();

    // The matrix in parallel (capped).
    let mut plans = Vec::new();
    for app in apps {
        for &p in protocols {
            plans.push(RunPlan::new(app, p, scale, nprocs));
        }
    }
    let outcomes: Vec<Outcome> = run_capped(&plans, |plan| {
        let (seq, _) = baselines[plan.app];
        run_one(plan, Some(seq))
    });

    for o in &outcomes {
        let (_, expected) = baselines[o.plan.app];
        assert_eq!(
            o.report.checksum,
            expected,
            "{} under {} diverged from sequential",
            o.plan.app,
            o.plan.protocol.label()
        );
    }
    outcomes
}

/// Find the outcome for (app, protocol) in a matrix result.
pub fn find<'a>(outcomes: &'a [Outcome], app: &str, protocol: ProtocolKind) -> &'a Outcome {
    outcomes
        .iter()
        .find(|o| o.plan.app == app && o.plan.protocol == protocol)
        .unwrap_or_else(|| panic!("missing outcome {app}/{}", protocol.label()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_runs_and_verifies() {
        let outcomes = run_matrix(
            &["sor"],
            &[ProtocolKind::LmwI, ProtocolKind::BarU],
            Scale::Small,
            4,
        );
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            // Small instances are sync-bound; real speedup expectations are
            // checked at paper scale by the fig2/fig4 harnesses and their
            // bench smoke tests.
            assert!(o.speedup().is_finite());
            assert!(o.speedup() > 0.05, "sor speedup {}", o.speedup());
        }
        let bu = find(&outcomes, "sor", ProtocolKind::BarU);
        assert_eq!(bu.report.stats.remote_misses, 0);
    }
}
