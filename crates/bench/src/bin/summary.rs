//! The paper's headline ratios (§3.3, §5.1), paper vs measured:
//!
//! * bar-i vs lmw-i: ~36% fewer diffs, ~31% fewer misses, ~49% fewer
//!   messages, ~74% more data;
//! * bar-u ≈ +19% speedup over the better lmw protocol;
//! * bar-s ≈ bar-u + 2%; bar-m ≈ + 34% on top;
//! * overall, "our update home-based protocols average 51% better than the
//!   original lmw invalidate protocols".

#![forbid(unsafe_code)]

use dsm_apps::Scale;
use dsm_bench::paper::{mean_rel_change, PAPER_HEADLINES};
use dsm_bench::table::TextTable;
use dsm_bench::{harness, run_matrix};
use dsm_core::ProtocolKind;

const ALL: [&str; 8] = [
    "barnes", "expl", "fft", "jacobi", "shallow", "sor", "swm", "tomcat",
];
const STATIC7: [&str; 7] = ["expl", "fft", "jacobi", "shallow", "sor", "swm", "tomcat"];

fn main() {
    let protocols = [
        ProtocolKind::LmwI,
        ProtocolKind::LmwU,
        ProtocolKind::BarI,
        ProtocolKind::BarU,
        ProtocolKind::BarS,
        ProtocolKind::BarM,
    ];
    eprintln!(
        "running the full {}x{} matrix (8 procs, paper scale)...",
        ALL.len(),
        protocols.len()
    );
    // barnes cannot run the overdrive protocols meaningfully, but they fall
    // back to bar-u behaviour, so the full matrix is safe.
    let outcomes = run_matrix(&ALL, &protocols, Scale::Paper, 8);

    let get = |app: &str, p: ProtocolKind| harness::find(&outcomes, app, p);
    let col = |p: ProtocolKind, f: &dyn Fn(&harness::Outcome) -> f64| -> Vec<f64> {
        ALL.iter().map(|a| f(get(a, p))).collect()
    };

    let diffs = |o: &harness::Outcome| o.report.stats.diffs_created as f64;
    let misses = |o: &harness::Outcome| o.report.stats.remote_misses as f64;
    let msgs = |o: &harness::Outcome| o.report.stats.paper_messages() as f64;
    let data = |o: &harness::Outcome| o.report.stats.data_kbytes();

    let li_d = col(ProtocolKind::LmwI, &diffs);
    let bi_d = col(ProtocolKind::BarI, &diffs);
    let li_m = col(ProtocolKind::LmwI, &misses);
    let bi_m = col(ProtocolKind::BarI, &misses);
    let li_g = col(ProtocolKind::LmwI, &msgs);
    let bi_g = col(ProtocolKind::BarI, &msgs);
    let li_b = col(ProtocolKind::LmwI, &data);
    let bi_b = col(ProtocolKind::BarI, &data);

    // Speedup aggregates over the static seven for the overdrive rows.
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let bu_gain: Vec<f64> = ALL
        .iter()
        .map(|a| {
            let best_lmw = get(a, ProtocolKind::LmwI)
                .speedup()
                .max(get(a, ProtocolKind::LmwU).speedup());
            get(a, ProtocolKind::BarU).speedup() / best_lmw - 1.0
        })
        .collect();
    let bs_gain: Vec<f64> = STATIC7
        .iter()
        .map(|a| get(a, ProtocolKind::BarS).speedup() / get(a, ProtocolKind::BarU).speedup() - 1.0)
        .collect();
    let bm_gain: Vec<f64> = STATIC7
        .iter()
        .map(|a| get(a, ProtocolKind::BarM).speedup() / get(a, ProtocolKind::BarU).speedup() - 1.0)
        .collect();
    let overall: Vec<f64> = STATIC7
        .iter()
        .map(|a| get(a, ProtocolKind::BarM).speedup() / get(a, ProtocolKind::LmwI).speedup() - 1.0)
        .collect();

    let mut t = TextTable::new(vec!["headline", "paper", "measured"]);
    let pct = |x: f64| format!("{:+.0}%", 100.0 * x);
    t.row(vec![
        "bar-i diffs vs lmw-i".to_string(),
        pct(-PAPER_HEADLINES.bar_i_fewer_diffs),
        pct(mean_rel_change(&li_d, &bi_d)),
    ]);
    t.row(vec![
        "bar-i remote misses vs lmw-i".to_string(),
        pct(-PAPER_HEADLINES.bar_i_fewer_misses),
        pct(mean_rel_change(&li_m, &bi_m)),
    ]);
    t.row(vec![
        "bar-i messages vs lmw-i".to_string(),
        pct(-PAPER_HEADLINES.bar_i_fewer_messages),
        pct(mean_rel_change(&li_g, &bi_g)),
    ]);
    t.row(vec![
        "bar-i data vs lmw-i".to_string(),
        pct(PAPER_HEADLINES.bar_i_more_data),
        pct(mean_rel_change(&li_b, &bi_b)),
    ]);
    t.row(vec![
        "bar-u speedup vs best lmw".to_string(),
        pct(PAPER_HEADLINES.bar_u_gain),
        pct(avg(&bu_gain)),
    ]);
    t.row(vec![
        "bar-s speedup vs bar-u".to_string(),
        pct(PAPER_HEADLINES.bar_s_gain),
        pct(avg(&bs_gain)),
    ]);
    t.row(vec![
        "bar-m speedup vs bar-u".to_string(),
        pct(PAPER_HEADLINES.bar_m_gain),
        pct(avg(&bm_gain)),
    ]);
    t.row(vec![
        "bar-m vs lmw-i overall".to_string(),
        "+51%".to_string(),
        pct(avg(&overall)),
    ]);

    println!("\nHeadline ratios — paper vs measured (8 procs, paper scale)\n");
    print!("{}", t.render());
    println!("\n(relative-change rows use geometric means over the 8 apps; speedup rows are arithmetic means)");
}
