//! Ablation sweeps for the design choices DESIGN.md calls out:
//!
//! * processor count (2..16) — scaling shape per protocol,
//! * page size 4 KB vs 8 KB (the paper chose 8 KB granularity),
//! * the mprotect stress model on/off (how much of bar-m's win is the
//!   OS-degradation effect),
//! * home migration on/off (how much the runtime assignment buys),
//! * unreliable-flush loss (correctness holds; performance degrades).

#![forbid(unsafe_code)]
// Each sweep defines its config-tweak fn right next to the matrix call
// that uses it; hoisting them to the top would separate cause from effect.
#![allow(clippy::items_after_statements)]

use dsm_apps::{app_by_name, Scale};
use dsm_bench::harness::{run_baseline, run_one, RunPlan};
use dsm_bench::table::TextTable;
use dsm_core::{ProtocolKind, RunConfig};

fn plan_with(
    app: &'static str,
    protocol: ProtocolKind,
    nprocs: usize,
    tweak: Option<fn(&mut RunConfig)>,
) -> RunPlan {
    let mut p = RunPlan::new(app, protocol, Scale::Paper, nprocs);
    p.tweak = tweak;
    p
}

fn main() {
    // --- 1. processor-count sweep -------------------------------------
    println!("\n[1] processor-count sweep (sor + fft, bar-u vs lmw-i)\n");
    let mut t = TextTable::new(vec![
        "nprocs",
        "sor lmw-i",
        "sor bar-u",
        "fft lmw-i",
        "fft bar-u",
    ]);
    for n in [2usize, 4, 8, 16] {
        let mut cells = vec![n.to_string()];
        for app in ["sor", "fft"] {
            let spec = app_by_name(app).unwrap();
            let (seq, _) = run_baseline(&spec, Scale::Paper, None);
            for p in [ProtocolKind::LmwI, ProtocolKind::BarU] {
                let o = run_one(&plan_with(spec.name, p, n, None), Some(seq));
                cells.push(format!("{:.2}", o.speedup()));
            }
        }
        // reorder: we pushed sor-li, sor-bu, fft-li, fft-bu in app-major order
        let reordered = vec![
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            cells[4].clone(),
        ];
        t.row(reordered);
    }
    print!("{}", t.render());

    // --- 2. page size --------------------------------------------------
    println!("\n[2] page size: 4 KB vs 8 KB (jacobi, bar-u and lmw-i)\n");
    let mut t = TextTable::new(vec![
        "page",
        "jacobi lmw-i",
        "jacobi bar-u",
        "misses li",
        "dataKB bu",
    ]);
    fn use_4k(c: &mut RunConfig) {
        c.sim.page_size = 4096;
    }
    for (label, tweak) in [("8192", None), ("4096", Some(use_4k as fn(&mut RunConfig)))] {
        let spec = app_by_name("jacobi").unwrap();
        let (seq, _) = run_baseline(&spec, Scale::Paper, tweak);
        let li = run_one(
            &plan_with("jacobi", ProtocolKind::LmwI, 8, tweak),
            Some(seq),
        );
        let bu = run_one(
            &plan_with("jacobi", ProtocolKind::BarU, 8, tweak),
            Some(seq),
        );
        t.row(vec![
            label.to_string(),
            format!("{:.2}", li.speedup()),
            format!("{:.2}", bu.speedup()),
            format!("{}", li.report.stats.remote_misses),
            format!("{:.0}", bu.report.stats.data_kbytes()),
        ]);
    }
    print!("{}", t.render());

    // --- 3. stress model ----------------------------------------------
    println!(
        "\n[3] mprotect stress model on/off (swm): how much of bar-m's win is OS degradation\n"
    );
    let mut t = TextTable::new(vec!["stress", "bar-u", "bar-m", "bar-m gain"]);
    fn no_stress(c: &mut RunConfig) {
        c.sim.stress.enabled = false;
    }
    for (label, tweak) in [("on", None), ("off", Some(no_stress as fn(&mut RunConfig)))] {
        let spec = app_by_name("swm").unwrap();
        let (seq, _) = run_baseline(&spec, Scale::Paper, tweak);
        let bu = run_one(&plan_with("swm", ProtocolKind::BarU, 8, tweak), Some(seq));
        let bm = run_one(&plan_with("swm", ProtocolKind::BarM, 8, tweak), Some(seq));
        t.row(vec![
            label.to_string(),
            format!("{:.2}", bu.speedup()),
            format!("{:.2}", bm.speedup()),
            format!("{:+.1}%", 100.0 * (bm.speedup() / bu.speedup() - 1.0)),
        ]);
    }
    print!("{}", t.render());

    // --- 4. home migration ---------------------------------------------
    println!("\n[4] runtime home migration on/off (sor + tomcat, bar-i)\n");
    let mut t = TextTable::new(vec![
        "migration",
        "sor bar-i",
        "tomcat bar-i",
        "sor misses",
        "tomcat misses",
    ]);
    fn no_migration(c: &mut RunConfig) {
        c.migration = false;
    }
    for (label, tweak) in [
        ("on", None),
        ("off", Some(no_migration as fn(&mut RunConfig))),
    ] {
        let mut cells = vec![label.to_string()];
        let mut misses = Vec::new();
        for app in ["sor", "tomcat"] {
            let spec = app_by_name(app).unwrap();
            let (seq, _) = run_baseline(&spec, Scale::Paper, tweak);
            let o = run_one(
                &plan_with(spec.name, ProtocolKind::BarI, 8, tweak),
                Some(seq),
            );
            cells.push(format!("{:.2}", o.speedup()));
            misses.push(format!("{}", o.report.stats.remote_misses));
        }
        cells.extend(misses);
        t.row(cells);
    }
    print!("{}", t.render());

    // --- 5. flush loss ---------------------------------------------------
    println!("\n[5] unreliable flushes (expl, lmw-u): correctness holds, performance degrades\n");
    let mut t = TextTable::new(vec!["drop", "speedup", "misses", "flushes dropped"]);
    fn drop10(c: &mut RunConfig) {
        c.sim.flush_drop_prob = 0.10;
    }
    fn drop50(c: &mut RunConfig) {
        c.sim.flush_drop_prob = 0.50;
    }
    for (label, tweak) in [
        ("0%", None),
        ("10%", Some(drop10 as fn(&mut RunConfig))),
        ("50%", Some(drop50 as fn(&mut RunConfig))),
    ] {
        let spec = app_by_name("expl").unwrap();
        let (seq, expected) = run_baseline(&spec, Scale::Paper, tweak);
        let o = run_one(&plan_with("expl", ProtocolKind::LmwU, 8, tweak), Some(seq));
        assert_eq!(o.report.checksum, expected, "flush loss broke correctness!");
        t.row(vec![
            label.to_string(),
            format!("{:.2}", o.speedup()),
            format!("{}", o.report.stats.remote_misses),
            format!("{}", o.report.stats.net.flushes_dropped),
        ]);
    }
    print!("{}", t.render());
    println!("\n(all flush-loss runs produced checksums identical to the sequential baseline)");

    // --- 6. machine era -------------------------------------------------
    println!("\n[6] 1998 SP-2/AIX vs a tuned modern machine (swm): the paper's §5.2 conjecture\n");
    let mut t = TextTable::new(vec!["machine", "bar-u", "bar-s", "bar-m", "bar-m gain"]);
    fn modern(c: &mut RunConfig) {
        c.sim.costs = dsm_sim::CostModel::modern();
        c.sim.stress.enabled = false; // a tuned OS: no degradation cliff
    }
    for (label, tweak) in [
        ("SP-2/AIX", None),
        ("modern", Some(modern as fn(&mut RunConfig))),
    ] {
        let spec = app_by_name("swm").unwrap();
        let (seq, _) = run_baseline(&spec, Scale::Paper, tweak);
        let bu = run_one(&plan_with("swm", ProtocolKind::BarU, 8, tweak), Some(seq));
        let bs = run_one(&plan_with("swm", ProtocolKind::BarS, 8, tweak), Some(seq));
        let bm = run_one(&plan_with("swm", ProtocolKind::BarM, 8, tweak), Some(seq));
        t.row(vec![
            label.to_string(),
            format!("{:.2}", bu.speedup()),
            format!("{:.2}", bs.speedup()),
            format!("{:.2}", bm.speedup()),
            format!("{:+.1}%", 100.0 * (bm.speedup() / bu.speedup() - 1.0)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(§5.2: \"eliminating interrupts and kernel traps will always improve \
         performance even if operating system support is tuned\" — the gain \
         shrinks but stays positive)"
    );
}
