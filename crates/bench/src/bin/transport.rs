//! Dual-backend protocol matrix: every requested app × protocol on both
//! transport personalities (the two-sided lossy wire and the one-sided
//! RDMA-style backend), each run under the full dsm-check stack.
//!
//! ```text
//! transport [--apps a,b,..] [--protocols lmw-i,bar-u,..] [--nprocs N]
//!           [--scale small|paper]
//! ```
//!
//! For every cell the two-sided run is the reference: the table reports
//! the one-sided backend's virtual-time delta against it and asserts the
//! checksum is unchanged — the transport may move the messages, it may
//! never change the answer. The closing section ranks update against
//! invalidate within each family per backend: the paper's 1998 ranking
//! (update wins: extra flush bytes are cheaper than remote faults) is a
//! property of the wire, and the one-sided backend's collapsed fetch cost
//! flips it where fetches dominate.
//!
//! All output is a pure function of the run configuration, so the
//! committed `results/transport-small.txt` and
//! `results/transport-paper.txt` are `diff`ed byte-for-byte in CI. Any
//! violation writes the offending check report under `results/repro/` and
//! exits nonzero.

#![forbid(unsafe_code)]

use std::sync::Arc;

use dsm_apps::{all_apps, app_by_name, AppSpec, Scale};
use dsm_bench::table::TextTable;
use dsm_check::checked_run;
use dsm_core::{ProtocolKind, RegionTable, RunConfig};
use dsm_plan::{analyze, build_schedule, prove_regions};
use dsm_sim::transport::TransportKind;

/// All seven real protocols (bar-r runs with its proven region table).
const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::LmwI,
    ProtocolKind::LmwU,
    ProtocolKind::BarI,
    ProtocolKind::BarU,
    ProtocolKind::BarS,
    ProtocolKind::BarM,
    ProtocolKind::BarR,
];

const BACKENDS: [TransportKind; 2] = [TransportKind::TwoSided, TransportKind::OneSided];

fn protocol_by_label(label: &str) -> ProtocolKind {
    let all = [
        ProtocolKind::Seq,
        ProtocolKind::LmwI,
        ProtocolKind::LmwU,
        ProtocolKind::BarI,
        ProtocolKind::BarU,
        ProtocolKind::BarS,
        ProtocolKind::BarM,
        ProtocolKind::BarR,
    ];
    all.into_iter()
        .find(|p| p.label() == label)
        .unwrap_or_else(|| panic!("unknown protocol {label:?}"))
}

struct Args {
    apps: Vec<&'static str>,
    protocols: Vec<ProtocolKind>,
    nprocs: usize,
    scale: Scale,
}

fn parse_args() -> Args {
    let mut args = Args {
        apps: all_apps().iter().map(|s| s.name).collect(),
        protocols: PROTOCOLS.to_vec(),
        nprocs: 8,
        scale: Scale::Paper,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--apps" => {
                args.apps = val
                    .split(',')
                    .map(|a| {
                        app_by_name(a)
                            .unwrap_or_else(|| panic!("unknown app {a:?}"))
                            .name
                    })
                    .collect();
            }
            "--protocols" => {
                args.protocols = val.split(',').map(protocol_by_label).collect();
            }
            "--nprocs" => args.nprocs = val.parse().expect("--nprocs"),
            "--scale" => {
                args.scale = match val.as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale {other:?}"),
                }
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

/// Prove the region table for one (app, nprocs, scale) cell, exactly as
/// the `regions` report bin does.
fn region_table(spec: &AppSpec, nprocs: usize, scale: Scale) -> RegionTable {
    let mut probe = spec.build_planned(scale);
    let an = analyze(probe.as_mut(), nprocs);
    let sched = build_schedule(&an.plan, ProtocolKind::BarR, an.iters);
    prove_regions(&an.plan, &an.layout, &sched)
}

#[allow(clippy::cast_precision_loss)]
fn percent(now: u64, base: u64) -> String {
    let delta = now as f64 - base as f64;
    format!("{:+.1}%", delta / base.max(1) as f64 * 100.0)
}

/// Measured cells, in run order: `(app, protocol, backend, elapsed ns)`.
type Cells = Vec<(String, ProtocolKind, TransportKind, u64)>;

fn elapsed_of(cells: &Cells, app: &str, p: ProtocolKind, b: TransportKind) -> Option<u64> {
    cells
        .iter()
        .find(|(a, cp, cb, _)| a == app && *cp == p && *cb == b)
        .map(|&(_, _, _, t)| t)
}

/// One family's update-vs-invalidate verdict on one backend.
fn winner(
    cells: &Cells,
    app: &str,
    upd: ProtocolKind,
    inv: ProtocolKind,
    backend: TransportKind,
) -> Option<ProtocolKind> {
    let tu = elapsed_of(cells, app, upd, backend)?;
    let ti = elapsed_of(cells, app, inv, backend)?;
    Some(if tu <= ti { upd } else { inv })
}

fn main() {
    let args = parse_args();
    assert!(args.nprocs >= 2, "the matrix needs at least two processes");
    println!("== dual-backend transport matrix ==");
    println!(
        "config: nprocs={} scale={} backends=two-sided,one-sided",
        args.nprocs,
        match args.scale {
            Scale::Small => "small",
            Scale::Paper => "paper",
        },
    );
    println!();

    let mut t = TextTable::new(vec![
        "app",
        "protocol",
        "backend",
        "time us",
        "vs 2-sided",
        "msgs",
        "data kB",
        "result",
        "verdict",
    ]);
    let mut dirty: Vec<String> = Vec::new();
    let mut cells: Cells = Vec::new();
    for app in &args.apps {
        let spec = app_by_name(app).unwrap();
        for &protocol in &args.protocols {
            let regions = protocol
                .is_region()
                .then(|| Arc::new(region_table(&spec, args.nprocs, args.scale)));
            let mut base_elapsed = 0u64;
            let mut base_checksum = 0.0f64;
            for backend in BACKENDS {
                let mut cfg = RunConfig::with_nprocs(protocol, args.nprocs);
                cfg.regions.clone_from(&regions);
                cfg.sim.transport = backend;
                let (run, check) = checked_run(spec.build(args.scale).as_mut(), cfg);
                let elapsed = run.elapsed.as_ns();
                let clean = check.is_clean();
                cells.push(((*app).to_string(), protocol, backend, elapsed));
                let (delta, result) = if backend == TransportKind::TwoSided {
                    base_elapsed = elapsed;
                    base_checksum = run.checksum;
                    ("base".to_string(), "ok".to_string())
                } else {
                    (
                        percent(elapsed, base_elapsed),
                        if run.checksum == base_checksum {
                            "ok".to_string()
                        } else {
                            "DIFF".to_string()
                        },
                    )
                };
                if !clean || result == "DIFF" {
                    let name = format!("{app}-{}-{}", protocol.label(), backend.label());
                    let _ = std::fs::create_dir_all("results/repro");
                    let path = format!("results/repro/transport-{name}.txt");
                    let body = format!(
                        "transport violation: {app} under {} on the {} backend\n\
                         checksum: run {} vs two-sided {}\n{}",
                        protocol.label(),
                        backend.label(),
                        run.checksum,
                        base_checksum,
                        check.summary()
                    );
                    if std::fs::write(&path, &body).is_ok() {
                        eprintln!("--- {name}: violation report written to {path}");
                    }
                    eprintln!("{body}");
                    dirty.push(name);
                }
                t.row(vec![
                    spec.name.to_string(),
                    protocol.label().to_string(),
                    backend.label().to_string(),
                    (elapsed / 1000).to_string(),
                    delta,
                    run.stats.net.paper_messages().to_string(),
                    format!("{:.0}", run.stats.net.data_kbytes()),
                    result,
                    if clean { "clean" } else { "FLAGGED" }.to_string(),
                ]);
            }
        }
    }
    print!("{}", t.render());

    // The paper's central ranking, re-asked per backend: within each
    // family, does update or invalidate win? A FLIP row is an app where
    // the one-sided wire inverts the 1998 verdict.
    let pairs = [
        (ProtocolKind::LmwU, ProtocolKind::LmwI),
        (ProtocolKind::BarU, ProtocolKind::BarI),
    ];
    let have = |p: ProtocolKind| args.protocols.contains(&p);
    if pairs.iter().any(|&(u, i)| have(u) && have(i)) {
        println!();
        println!("== update-vs-invalidate ranking by backend ==");
        let mut r = TextTable::new(vec!["app", "pair", "two-sided", "one-sided", "verdict"]);
        let mut flips = 0usize;
        let mut compared = 0usize;
        for app in &args.apps {
            for &(upd, inv) in &pairs {
                if !have(upd) || !have(inv) {
                    continue;
                }
                let (Some(two), Some(one)) = (
                    winner(&cells, app, upd, inv, TransportKind::TwoSided),
                    winner(&cells, app, upd, inv, TransportKind::OneSided),
                ) else {
                    continue;
                };
                compared += 1;
                let flip = two != one;
                flips += usize::from(flip);
                r.row(vec![
                    (*app).to_string(),
                    format!("{}/{}", upd.label(), inv.label()),
                    two.label().to_string(),
                    one.label().to_string(),
                    if flip { "FLIP" } else { "-" }.to_string(),
                ]);
            }
        }
        print!("{}", r.render());
        println!();
        println!("{flips} of {compared} family rankings flip on the one-sided backend");
    }

    if !dirty.is_empty() {
        eprintln!(
            "{} transport cell(s) flagged: {}",
            dirty.len(),
            dirty.join(", ")
        );
        std::process::exit(1);
    }
}
