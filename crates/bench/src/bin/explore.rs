//! Systematic schedule & fault-space exploration runner (dsm-explore).
//!
//! ```text
//! explore [--apps a,b,..] [--protocols lmw-u,bar-u,..] [--nprocs N]
//!         [--iters-cap N] [--budget N] [--drop-points N] [--dup-points N]
//!         [--defers N] [--no-por] [--no-prune] [--por-factor] [--hunt]
//!         [--jobs N] [--save-trace PATH] [--replay FILE]
//! ```
//!
//! Default mode explores every requested app × protocol cell up to a
//! per-protocol schedule budget, running each schedule under the full
//! `dsm-check` oracles, and exits nonzero on any violation. `--por-factor`
//! appends the partial-order-reduction measurement section and `--hunt`
//! the planted-bug regression section (the two extra sections of the
//! committed `results/explore-baseline.txt`). `--replay FILE` re-executes
//! a saved violating schedule instead and prints its findings.
//!
//! `--jobs N` fans the independent app × protocol cells out over N worker
//! threads (capped at the host's available parallelism; default 1). Cells
//! share nothing — each exploration owns its visited set — and results are
//! merged in the fixed cell order, so the output is byte-identical at any
//! job count.
//!
//! All output is deterministic (schedule counts, not wall-clock), so the
//! committed baselines can be `diff`ed byte-for-byte in CI.

#![forbid(unsafe_code)]

use dsm_apps::{all_apps, app_by_name, Scale};
use dsm_bench::table::TextTable;
use dsm_core::{DsmApp, PlantedBug, ProtocolKind, RunConfig};
use dsm_explore::{
    config_for_trace, explore, protocol_by_label, replay, Bounds, CappedApp, ChoiceTrace,
    ExploreOpts, RegressApp,
};

/// The six real protocols (seq has no inter-process choices to explore).
const PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::LmwI,
    ProtocolKind::LmwU,
    ProtocolKind::BarI,
    ProtocolKind::BarU,
    ProtocolKind::BarS,
    ProtocolKind::BarM,
];

/// Per-protocol schedule budgets: update protocols branch on every
/// droppable flush, so their fault space is far larger than the
/// invalidate protocols'.
fn default_budget(p: ProtocolKind) -> usize {
    match p {
        ProtocolKind::Seq => 8,
        ProtocolKind::LmwI => 64,
        ProtocolKind::LmwU => 256,
        ProtocolKind::BarI => 96,
        ProtocolKind::BarU | ProtocolKind::BarR => 192,
        ProtocolKind::BarS | ProtocolKind::BarM => 128,
    }
}

struct Args {
    apps: Vec<&'static str>,
    protocols: Vec<ProtocolKind>,
    nprocs: usize,
    iters_cap: usize,
    budget: Option<usize>,
    bounds: Bounds,
    por_factor: bool,
    hunt: bool,
    jobs: usize,
    save_trace: Option<String>,
    replay: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        apps: all_apps().iter().map(|s| s.name).collect(),
        protocols: PROTOCOLS.to_vec(),
        nprocs: 2,
        iters_cap: 2,
        budget: None,
        bounds: Bounds::default(),
        por_factor: false,
        hunt: false,
        jobs: 1,
        save_trace: None,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--no-por" => args.bounds.por = false,
            "--no-prune" => args.bounds.state_prune = false,
            "--por-factor" => args.por_factor = true,
            "--hunt" => args.hunt = true,
            _ => {
                let val = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
                match flag.as_str() {
                    "--apps" => {
                        args.apps = val
                            .split(',')
                            .map(|a| {
                                app_by_name(a)
                                    .unwrap_or_else(|| panic!("unknown app {a:?}"))
                                    .name
                            })
                            .collect();
                    }
                    "--protocols" => {
                        args.protocols = val
                            .split(',')
                            .map(|l| {
                                protocol_by_label(l)
                                    .unwrap_or_else(|| panic!("unknown protocol {l:?}"))
                            })
                            .collect();
                    }
                    "--nprocs" => args.nprocs = val.parse().expect("--nprocs"),
                    "--iters-cap" => args.iters_cap = val.parse().expect("--iters-cap"),
                    "--budget" => args.budget = Some(val.parse().expect("--budget")),
                    "--drop-points" => {
                        args.bounds.max_drop_points = val.parse().expect("--drop-points");
                    }
                    "--dup-points" => {
                        args.bounds.max_dup_points = val.parse().expect("--dup-points");
                    }
                    "--defers" => args.bounds.max_defers = val.parse().expect("--defers"),
                    "--jobs" => {
                        let want: usize = val.parse().expect("--jobs");
                        let avail = std::thread::available_parallelism()
                            .map_or(1, std::num::NonZeroUsize::get);
                        args.jobs = want.clamp(1, avail);
                    }
                    "--save-trace" => args.save_trace = Some(val),
                    "--replay" => args.replay = Some(val),
                    other => panic!("unknown flag {other:?}"),
                }
            }
        }
    }
    args
}

/// Build the application a trace (or the hunt) names: the purpose-built
/// regression app, or a registry app capped to the exploration iteration
/// budget.
fn build_app(name: &str, iters_cap: usize) -> Box<dyn DsmApp> {
    if name == "regress" {
        Box::new(RegressApp::new())
    } else {
        let spec = app_by_name(name).unwrap_or_else(|| panic!("unknown app {name:?}"));
        Box::new(CappedApp::new(spec.build(Scale::Small), iters_cap))
    }
}

/// One explored app x protocol cell, rendered: the table row plus any
/// violation text destined for stderr.
struct CellOut {
    row: Vec<String>,
    stderr: String,
}

/// Explore one cell; pure function of the arguments, so cells can run on
/// any worker thread in any order.
fn run_cell(app: &'static str, protocol: ProtocolKind, args: &Args) -> CellOut {
    let budget = args.budget.unwrap_or_else(|| default_budget(protocol));
    let cfg = RunConfig::with_nprocs(protocol, args.nprocs);
    let opts = ExploreOpts {
        max_schedules: budget,
        stop_on_violation: true,
        bounds: args.bounds,
        static_groups: None,
    };
    let rep = explore(|| build_app(app, args.iters_cap), &cfg, &opts);
    let stderr = rep.violation.as_ref().map_or_else(String::new, |v| {
        format!(
            "--- {app} under {} (schedule {}):\n{}\n",
            protocol.label(),
            v.schedule_index,
            v.report.summary()
        )
    });
    CellOut {
        row: vec![
            app.to_string(),
            protocol.label().to_string(),
            budget.to_string(),
            rep.schedules.to_string(),
            rep.completed.to_string(),
            rep.pruned.to_string(),
            rep.max_points.to_string(),
            if rep.frontier_exhausted {
                "done"
            } else {
                "budget"
            }
            .to_string(),
            if rep.violation.is_some() {
                "FLAGGED"
            } else {
                "clean"
            }
            .to_string(),
        ],
        stderr,
    }
}

/// Run every cell on `args.jobs` worker threads pulling from a shared
/// queue, then hand the results back in the fixed cell order — output is
/// byte-identical at any job count.
fn run_cells(cells: &[(&'static str, ProtocolKind)], args: &Args) -> Vec<CellOut> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = args.jobs.min(cells.len()).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellOut>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(app, protocol)) = cells.get(i) else {
                    break;
                };
                let out = run_cell(app, protocol, args);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every cell ran")
        })
        .collect()
}

fn replay_mode(path: &str) -> ! {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read trace {path:?}: {e}"));
    let trace = ChoiceTrace::parse(&text).unwrap_or_else(|e| panic!("bad trace {path:?}: {e}"));
    let cfg = config_for_trace(&trace);
    println!(
        "replaying {} choice points: {} under {} ({} procs, planted={})",
        trace.choices.len(),
        trace.app,
        trace.protocol.label(),
        trace.nprocs,
        trace.planted.label(),
    );
    let report = replay(|| build_app(&trace.app, trace.iters_cap), &cfg, &trace);
    println!(
        "races={} stale={} invariant={}",
        report.races(),
        report.stale_reads(),
        report.invariant_violations()
    );
    print!("{}", report.summary());
    if report.is_clean() {
        println!("replayed schedule is clean");
    }
    std::process::exit(0);
}

/// The POR measurement: same bounded tree of the regression app, POR on
/// vs off, state pruning off in both arms so only the reduction differs.
fn por_factor_section(nprocs: usize) {
    println!("\n== partial-order reduction (regress, lmw-u, {nprocs} procs) ==\n");
    let cfg = RunConfig::with_nprocs(ProtocolKind::LmwU, nprocs);
    let base = Bounds {
        state_prune: false,
        ..Bounds::default()
    };
    let on = explore(
        || Box::new(RegressApp::new()),
        &cfg,
        &ExploreOpts {
            max_schedules: 5000,
            stop_on_violation: false,
            bounds: Bounds { por: true, ..base },
            static_groups: None,
        },
    );
    let cap = 2000;
    let off = explore(
        || Box::new(RegressApp::new()),
        &cfg,
        &ExploreOpts {
            max_schedules: cap,
            stop_on_violation: false,
            bounds: Bounds { por: false, ..base },
            static_groups: None,
        },
    );
    println!(
        "por on : {} schedules (frontier exhausted: {})",
        on.schedules, on.frontier_exhausted
    );
    let off_count = if off.frontier_exhausted {
        format!("{} schedules", off.schedules)
    } else {
        format!(">= {} schedules (budget cap)", off.schedules)
    };
    println!("por off: {off_count}");
    #[allow(clippy::cast_precision_loss)]
    let factor = off.schedules as f64 / on.schedules.max(1) as f64;
    let cmp = if off.frontier_exhausted { "" } else { ">= " };
    println!("reduction factor: {cmp}{factor:.1}x");
    assert!(
        factor >= 10.0,
        "POR reduction fell below the 10x acceptance bar"
    );
}

/// The planted-bug regression: systematic exploration must find the
/// lmw-u coverage-gap bug in well under 1000 schedules.
fn hunt_section(save_trace: Option<&str>) -> bool {
    println!("\n== planted-bug hunt (regress, lmw-u, 2 procs, lmw-u-coverage-gap) ==\n");
    let mut cfg = RunConfig::with_nprocs(ProtocolKind::LmwU, 2);
    cfg.planted = PlantedBug::LmwUCoverageGap;
    let opts = ExploreOpts {
        max_schedules: 1000,
        stop_on_violation: true,
        bounds: Bounds::default(),
        static_groups: None,
    };
    let rep = explore(|| Box::new(RegressApp::new()), &cfg, &opts);
    let Some(v) = rep.violation else {
        println!("NOT FOUND within {} schedules", rep.schedules);
        return false;
    };
    println!(
        "violation found at schedule {} ({} choice points, {} stale reads)",
        v.schedule_index,
        v.choices.len(),
        v.report.stale_reads()
    );
    if let Some(path) = save_trace {
        let trace = ChoiceTrace {
            app: "regress".to_string(),
            protocol: cfg.protocol,
            nprocs: 2,
            iters_cap: 0,
            planted: cfg.planted,
            bounds: opts.bounds,
            choices: v.choices,
        };
        std::fs::write(path, trace.to_text())
            .unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        println!("replayable trace saved to {path}");
    }
    true
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.replay {
        replay_mode(path);
    }

    println!("== bounded schedule/fault-space exploration ==");
    // The dup-points knob is printed only when enabled so the committed
    // dup-free baselines keep their exact config line.
    let dups = if args.bounds.max_dup_points > 0 {
        format!(" dup-points={}", args.bounds.max_dup_points)
    } else {
        String::new()
    };
    println!(
        "config: nprocs={} iters-cap={} drop-points={}{dups} defers={} por={} prune={}",
        args.nprocs,
        args.iters_cap,
        args.bounds.max_drop_points,
        args.bounds.max_defers,
        if args.bounds.por { "on" } else { "off" },
        if args.bounds.state_prune { "on" } else { "off" },
    );
    println!();

    let cells: Vec<(&'static str, ProtocolKind)> = args
        .apps
        .iter()
        .flat_map(|&app| args.protocols.iter().map(move |&p| (app, p)))
        .collect();
    let outs = run_cells(&cells, &args);

    let mut t = TextTable::new(vec![
        "app",
        "protocol",
        "budget",
        "schedules",
        "checked",
        "pruned",
        "max pts",
        "frontier",
        "verdict",
    ]);
    let mut dirty = 0usize;
    for out in outs {
        if !out.stderr.is_empty() {
            dirty += 1;
            eprint!("{}", out.stderr);
        }
        t.row(out.row);
    }
    print!("{}", t.render());

    if args.por_factor {
        por_factor_section(args.nprocs);
    }
    let mut hunt_ok = true;
    if args.hunt {
        hunt_ok = hunt_section(args.save_trace.as_deref());
    }

    if dirty > 0 {
        eprintln!("{dirty} cell(s) flagged violations");
        std::process::exit(1);
    }
    if !hunt_ok {
        eprintln!("planted-bug hunt failed to find the violation");
        std::process::exit(1);
    }
}
