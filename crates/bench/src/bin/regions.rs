//! Region report and measured traffic gate (`results/regions-small.txt`,
//! `results/regions-paper.txt`).
//!
//! For every registered application at one scale:
//!
//! * run the false-sharing prover over the lowered plan and print the
//!   proven region table (classification counts, per-page certificates,
//!   table digest) — any prover or plan change shows up as a reviewable
//!   diff against the committed copy;
//! * ground the certificates dynamically: a `bar-r` run with the table
//!   installed is replayed through a [`RegionSink`], and every certificate
//!   violation (a write outside its proven spans, or two writers' dynamic
//!   ranges overlapping on a false-shared page) fails the run;
//! * measure the region-granularity traffic win: the same workload under
//!   `bar-u` and `bar-r` must produce bit-identical checksums, and the
//!   report records flushed diff bytes and messages side by side, plus the
//!   per-page ledger for every proven false-shared page.
//!
//! Output is deterministic `key=value` lines (virtual time only); CI
//! regenerates it and diffs against the committed copy. Exits nonzero on
//! any certificate violation or checksum divergence — the report is also
//! the gate.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use dsm_apps::{all_apps, Scale};
use dsm_core::{run_app, run_app_checked, PageClass, ProtocolKind, RunConfig};
use dsm_plan::{analyze, build_schedule, prove_regions, render_region_report, RegionSink};

const NPROCS: usize = 8;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["--scale", "small"] => Scale::Small,
        ["--scale", "paper"] => Scale::Paper,
        _ => {
            eprintln!("usage: regions --scale <small|paper>");
            return ExitCode::FAILURE;
        }
    };
    let scale_label = match scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Plan-proven sub-page regions: static false-sharing certificates,\n\
         dynamic grounding of every proof obligation, and measured bar-r vs\n\
         bar-u flush traffic. scale={scale_label} nprocs={NPROCS}"
    );
    let mut ok = true;

    for spec in all_apps() {
        let _ = writeln!(out);

        // Static half: prove the table from the lowered plan.
        let mut probe = spec.build_planned(scale);
        let an = analyze(probe.as_mut(), NPROCS);
        let sched = build_schedule(&an.plan, ProtocolKind::BarR, an.iters);
        let rt = Arc::new(prove_regions(&an.plan, &an.layout, &sched));
        render_region_report(&mut out, spec.name, &rt);

        // Dynamic half: ground every certificate against a real bar-r run.
        let (sink, outcome) = RegionSink::new(Arc::clone(&rt), an.layout.page_size);
        let mut cfg = RunConfig::with_nprocs(ProtocolKind::BarR, NPROCS);
        cfg.regions = Some(Arc::clone(&rt));
        let rr = run_app_checked(spec.build(scale).as_mut(), cfg, Box::new(sink));
        let o = outcome.borrow();
        let _ = writeln!(
            out,
            "app={} grounding writes_checked={} false_shared_pages_hit={} \
             contended_page_epochs={} violations={}",
            spec.name,
            o.writes_checked,
            o.false_shared_pages_hit,
            o.contended_page_epochs,
            o.errors.len(),
        );
        if !o.errors.is_empty() {
            ok = false;
            for e in &o.errors {
                eprintln!("regions: {} certificate violation: {e}", spec.name);
            }
        }

        // Measured traffic: same workload under page-granularity bar-u.
        let ru = run_app(
            spec.build(scale).as_mut(),
            RunConfig::with_nprocs(ProtocolKind::BarU, NPROCS),
        );
        let matches = rr.checksum.to_bits() == ru.checksum.to_bits();
        if !matches {
            ok = false;
            eprintln!(
                "regions: {} checksum diverged: bar-r {} vs bar-u {}",
                spec.name, rr.checksum, ru.checksum
            );
        }
        let _ = writeln!(
            out,
            "app={} traffic bar_u_flush_bytes={} bar_r_flush_bytes={} \
             bar_u_flush_msgs={} bar_r_flush_msgs={} twin_skips={} elided_pushes={} \
             push_bytes_saved={} checksums={}",
            spec.name,
            ru.stats.flush_bytes_total(),
            rr.stats.flush_bytes_total(),
            ru.stats.flush_msgs_by_page.iter().sum::<u64>(),
            rr.stats.flush_msgs_by_page.iter().sum::<u64>(),
            rr.stats.region_twin_skips,
            rr.stats.region_elided_pushes,
            rr.stats.region_push_bytes_saved,
            if matches { "match" } else { "DIVERGED" },
        );
        // The per-page ledger on every proven false-shared page — the
        // pages where region granularity is supposed to pay.
        let at = |v: &[u64], p: u32| v.get(p as usize).copied().unwrap_or(0);
        for c in rt.iter().filter(|c| c.class == PageClass::FalseShared) {
            let _ = writeln!(
                out,
                "app={} page={} false-shared bar_u_bytes={} bar_r_bytes={} \
                 bar_u_msgs={} bar_r_msgs={}",
                spec.name,
                c.page,
                at(&ru.stats.flush_bytes_by_page, c.page),
                at(&rr.stats.flush_bytes_by_page, c.page),
                at(&ru.stats.flush_msgs_by_page, c.page),
                at(&rr.stats.flush_msgs_by_page, c.page),
            );
        }
    }

    print!("{out}");
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("regions: certificate or checksum gate FAILED (see lines above)");
        ExitCode::FAILURE
    }
}
