//! Regenerate the paper's **Figure 3: Time Breakdown for Bar-u** — the
//! per-application split of execution time into sigio handling, wait time,
//! OS overhead (dominated by `mprotect`), and application compute.

#![forbid(unsafe_code)]

use dsm_apps::Scale;
use dsm_bench::table::TextTable;
use dsm_bench::{harness, run_matrix};
use dsm_core::ProtocolKind;
use dsm_sim::Category;

const APPS: [&str; 8] = [
    "barnes", "expl", "fft", "jacobi", "shallow", "sor", "swm", "tomcat",
];

fn main() {
    eprintln!(
        "running bar-u across {} apps (8 procs, paper scale)...",
        APPS.len()
    );
    let outcomes = run_matrix(&APPS, &[ProtocolKind::BarU], Scale::Paper, 8);

    let mut t = TextTable::new(vec!["app", "sigio%", "wait%", "os%", "app%"]);
    for app in APPS {
        let o = harness::find(&outcomes, app, ProtocolKind::BarU);
        let total = o.report.total_breakdown();
        t.row(vec![
            app.to_string(),
            format!("{:.1}", 100.0 * total.fraction(Category::Sigio)),
            format!("{:.1}", 100.0 * total.fraction(Category::Wait)),
            format!("{:.1}", 100.0 * total.fraction(Category::Os)),
            format!("{:.1}", 100.0 * total.fraction(Category::App)),
        ]);
    }
    println!("\nFigure 3 (measured): time breakdown for bar-u (all-process totals)\n");
    print!("{}", t.render());

    println!("\nstacked view:\n");
    for app in APPS {
        let o = harness::find(&outcomes, app, ProtocolKind::BarU);
        let total = o.report.total_breakdown();
        let width = 50usize;
        let mut lens = [Category::Sigio, Category::Wait, Category::Os]
            .map(|c| (total.fraction(c) * width as f64).round() as usize);
        let used: usize = lens.iter().sum();
        let app_len = width.saturating_sub(used);
        if used > width {
            lens[1] = lens[1].saturating_sub(used - width);
        }
        println!(
            "{:>8} |{}{}{}{}|",
            app,
            "s".repeat(lens[0]),
            "w".repeat(lens[1]),
            "o".repeat(lens[2]),
            "a".repeat(app_len),
        );
    }
    println!("\n  s = sigio, w = wait, o = OS (mprotect/segv/syscalls), a = application");

    // The paper's observation: fft, shallow, and swm have substantial OS
    // components (mprotect under stress).
    for heavy in ["fft", "shallow", "swm"] {
        let o = harness::find(&outcomes, heavy, ProtocolKind::BarU);
        let f = o.report.total_breakdown().fraction(Category::Os);
        println!(
            "{heavy}: OS fraction {:.1}% {}",
            100.0 * f,
            if f > 0.10 {
                "(substantial, as in the paper)"
            } else {
                "(LOW — expected substantial)"
            }
        );
    }
}
