//! Regenerate the paper's **Figure 4: Overdrive Speedups** — best-lmw,
//! bar-u, bar-s, and bar-m speedups for the seven applications with static
//! sharing patterns (barnes is excluded: "its sharing pattern, although
//! iterative, is highly dynamic").

#![forbid(unsafe_code)]

use dsm_apps::Scale;
use dsm_bench::table::TextTable;
use dsm_bench::{harness, run_matrix};
use dsm_core::ProtocolKind;

const APPS: [&str; 7] = ["expl", "fft", "jacobi", "shallow", "sor", "swm", "tomcat"];

fn main() {
    let protocols = [
        ProtocolKind::LmwI,
        ProtocolKind::LmwU,
        ProtocolKind::BarU,
        ProtocolKind::BarS,
        ProtocolKind::BarM,
    ];
    eprintln!(
        "running {} x {} matrix (8 procs, paper scale)...",
        APPS.len(),
        protocols.len()
    );
    let outcomes = run_matrix(&APPS, &protocols, Scale::Paper, 8);

    let mut t = TextTable::new(vec!["app", "lmw(best)", "bar-u", "bar-s", "bar-m"]);
    let mut s_gains = Vec::new();
    let mut m_gains = Vec::new();
    for app in APPS {
        let li = harness::find(&outcomes, app, ProtocolKind::LmwI).speedup();
        let lu = harness::find(&outcomes, app, ProtocolKind::LmwU).speedup();
        let bu = harness::find(&outcomes, app, ProtocolKind::BarU).speedup();
        let bs = harness::find(&outcomes, app, ProtocolKind::BarS).speedup();
        let bm = harness::find(&outcomes, app, ProtocolKind::BarM).speedup();
        t.row(vec![
            app.to_string(),
            format!("{:.2}", li.max(lu)),
            format!("{bu:.2}"),
            format!("{bs:.2}"),
            format!("{bm:.2}"),
        ]);
        s_gains.push(bs / bu - 1.0);
        m_gains.push(bm / bu - 1.0);

        // §5.1 invariants: identical traffic across bar-u/s/m.
        let msgs = |p| {
            harness::find(&outcomes, app, p)
                .report
                .stats
                .paper_messages()
        };
        let bytes = |p: ProtocolKind| {
            harness::find(&outcomes, app, p)
                .report
                .stats
                .net
                .total_payload_bytes()
        };
        assert_eq!(
            msgs(ProtocolKind::BarU),
            msgs(ProtocolKind::BarS),
            "{app} msgs u/s"
        );
        assert_eq!(
            msgs(ProtocolKind::BarU),
            msgs(ProtocolKind::BarM),
            "{app} msgs u/m"
        );
        assert_eq!(
            bytes(ProtocolKind::BarU),
            bytes(ProtocolKind::BarS),
            "{app} bytes u/s"
        );
        assert_eq!(
            bytes(ProtocolKind::BarU),
            bytes(ProtocolKind::BarM),
            "{app} bytes u/m"
        );
    }
    println!("\nFigure 4 (measured): overdrive speedups — 8 processors\n");
    print!("{}", t.render());

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nbar-s vs bar-u: {:+.1}% average (paper: ~+2%)",
        100.0 * avg(&s_gains)
    );
    println!(
        "bar-m vs bar-u: {:+.1}% average (paper: ~+34%)",
        100.0 * avg(&m_gains)
    );
    println!("\ntraffic invariant verified: bar-u, bar-s, bar-m sent identical messages and bytes");
}
