//! Static access-plan analysis report (`results/plan-small.txt`,
//! `results/plan-paper.txt`).
//!
//! Runs the dsm-plan analyzer over every registered application at one
//! scale: lowers each declarative plan to page-granularity footprints,
//! proves phase-level race freedom for both schedule shapes, computes the
//! static page-conflict groups, and predicts per-barrier update-flush
//! traffic and steady-state copysets for the exactly-planned apps under
//! lmw-u, bar-u, and overdrive. Output is deterministic `key=value`
//! lines; CI regenerates it and diffs against the committed copy.
//!
//! Exits nonzero if any app fails the race-freedom proof — the report is
//! also the gate.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use dsm_apps::{all_apps, Scale};
use dsm_core::ProtocolKind;
use dsm_plan::{render_report, PlannedApp};

const NPROCS: usize = 8;

const PROTOCOLS: [ProtocolKind; 3] = [ProtocolKind::LmwU, ProtocolKind::BarU, ProtocolKind::BarS];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["--scale", "small"] => Scale::Small,
        ["--scale", "paper"] => Scale::Paper,
        _ => {
            eprintln!("usage: plan --scale <small|paper>");
            return ExitCode::FAILURE;
        }
    };
    let scale_label = match scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    let mut apps: Vec<Box<dyn PlannedApp>> = all_apps()
        .iter()
        .map(|spec| spec.build_planned(scale))
        .collect();
    let header = format!(
        "Static access-plan analysis: race-freedom proofs, page-conflict groups,\n\
         and predicted update traffic per barrier (protocol simulators over the\n\
         lowered page footprints). scale={scale_label}"
    );
    let (report, ok) = render_report(&header, NPROCS, &mut apps, &PROTOCOLS);
    print!("{report}");
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("plan: race-freedom proof FAILED (see race= lines above)");
        ExitCode::FAILURE
    }
}
