//! Reconstruct the paper's application-characteristics table.
//!
//! The paper's source text lost this table (its Word artifact prints
//! "Error! Reference source not found."); its caption says it reported the
//! shared segment size and the synchronization granularity ("the average
//! period between barrier synchronizations") per application. We measure
//! both from instrumented bar-u runs at paper scale.

#![forbid(unsafe_code)]

use dsm_apps::{all_apps, Scale};
use dsm_bench::table::TextTable;
use dsm_bench::{harness, run_matrix};
use dsm_core::ProtocolKind;

fn main() {
    let apps: Vec<&'static str> = all_apps().iter().map(|a| a.name).collect();
    eprintln!(
        "running bar-u across {} apps (8 procs, paper scale)...",
        apps.len()
    );
    let outcomes = run_matrix(&apps, &[ProtocolKind::BarU], Scale::Paper, 8);

    let mut t = TextTable::new(vec![
        "app",
        "seg. size (MB)",
        "seg. pages",
        "phases/iter",
        "sync gran. (ms)",
        "barriers",
    ]);
    for spec in all_apps() {
        let o = harness::find(&outcomes, spec.name, ProtocolKind::BarU);
        let phases = spec.build(Scale::Paper).phases();
        let pages = o.report.segment_pages;
        let gran_ms = o.report.elapsed.as_ms_f64() / o.report.stats.barriers.max(1) as f64;
        t.row(vec![
            spec.name.to_string(),
            format!("{:.1}", pages as f64 * 8192.0 / (1024.0 * 1024.0)),
            format!("{pages}"),
            format!("{phases}"),
            format!("{gran_ms:.2}"),
            format!("{}", o.report.stats.barriers),
        ]);
    }
    println!("\nApplication characteristics (measured under bar-u, 8 processors)\n");
    print!("{}", t.render());
    println!(
        "\nThis reconstructs the paper's missing application table: \"The shared \
         segment size is the size of the shared portion of the address space, \
         while 'Sync. Gran.' is the average period between barrier \
         synchronizations.\""
    );
    println!(
        "Fine granularity (swm) and large segments (fft, shallow, swm) are \
         exactly where Figures 3 and 4 locate the OS overhead and bar-m's wins."
    );
}
