//! travel — time-travel over a committed violating schedule.
//!
//! ```text
//! travel [--trace PATH]     (default results/repro/lmw-u-coverage-gap.trace)
//! ```
//!
//! Replays the saved choice trace step by step under the full `dsm-check`
//! oracles, snapshotting every step boundary with `dsm-snap`, then walks
//! the run *backward* by restoring each checkpoint in reverse order. One
//! line per step in each direction prints the structural state hash and
//! the check-event trace hash; the backward pass asserts every restored
//! hash matches its forward twin, and the run exits nonzero unless the
//! replayed schedule still produces the committed violation.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::rc::Rc;

use dsm_apps::{app_by_name, Scale};
use dsm_check::Checker;
use dsm_core::{DsmApp, StepRun};
use dsm_explore::{config_for_trace, Bounds, CappedApp, ChoiceTrace, ExploreScheduler, RegressApp};
use dsm_sim::SharedScheduler;

fn build_app(name: &str, iters_cap: usize) -> Box<dyn DsmApp> {
    if name == "regress" {
        Box::new(RegressApp::new())
    } else {
        let spec = app_by_name(name).unwrap_or_else(|| panic!("unknown app {name:?}"));
        Box::new(CappedApp::new(spec.build(Scale::Small), iters_cap))
    }
}

fn main() {
    let mut path = "results/repro/lmw-u-coverage-gap.trace".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => path = it.next().expect("--trace needs a value"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read trace {path:?}: {e}"));
    let trace = ChoiceTrace::parse(&text).unwrap_or_else(|e| panic!("bad trace {path:?}: {e}"));
    let cfg = config_for_trace(&trace);
    println!(
        "time-travelling {}: {} under {} ({} procs, planted={}, {} choice points)",
        path,
        trace.app,
        trace.protocol.label(),
        trace.nprocs,
        trace.planted.label(),
        trace.choices.len(),
    );

    // Replay discipline (see dsm_explore::replay): forced prefix, no
    // pruning, choice log asserted against the trace afterwards.
    let bounds = Bounds {
        state_prune: false,
        ..trace.bounds
    };
    let prefix: Vec<u32> = trace.choices.iter().map(|c| c.chosen).collect();
    let sched = Rc::new(RefCell::new(ExploreScheduler::new(bounds, prefix, None)));
    let shared: SharedScheduler = Rc::<RefCell<ExploreScheduler>>::clone(&sched);
    let checker = Checker::new(&cfg);
    let mut app = build_app(&trace.app, trace.iters_cap);
    let mut run = StepRun::new(
        app.as_mut(),
        cfg.clone(),
        Some(checker.sink()),
        Some(shared),
    );

    // Forward: snapshot every step boundary (step 0 = nothing executed).
    println!("\n== forward ==");
    let mut marks: Vec<(u64, u64, Vec<u8>)> = Vec::new();
    loop {
        let state = run.cluster().state_hash();
        let events = run.cluster().trace_hash();
        println!(
            "step {:>3}  state={state:016x}  trace={events:016x}",
            marks.len()
        );
        marks.push((state, events, dsm_snap::snapshot_run(&run, Some(&checker))));
        if !run.step() {
            break;
        }
    }
    let final_state = run.cluster().state_hash();
    println!(
        "step {:>3}  state={final_state:016x}  trace={:016x}  (end)",
        marks.len(),
        run.cluster().trace_hash()
    );
    assert_eq!(
        sched.borrow().log(),
        &trace.choices[..],
        "replayed choice points diverged from the trace"
    );
    let report = checker.report();
    println!(
        "\nfindings: races={} stale={} invariant={}",
        report.races(),
        report.stale_reads(),
        report.invariant_violations()
    );

    // Backward: restore each checkpoint newest-first; hashes must match
    // the forward pass bit for bit.
    println!("\n== backward ==");
    for (i, (state, events, bytes)) in marks.iter().enumerate().rev() {
        dsm_snap::restore_run(bytes, &mut run, Some(&checker));
        let got_state = run.cluster().state_hash();
        let got_events = run.cluster().trace_hash();
        println!("step {i:>3}  state={got_state:016x}  trace={got_events:016x}  (restored)");
        assert_eq!(got_state, *state, "backward step {i}: state hash mismatch");
        assert_eq!(
            got_events, *events,
            "backward step {i}: trace hash mismatch"
        );
    }
    println!("\nbackward walk matched the forward pass at every step");

    if report.is_clean() {
        eprintln!("replayed schedule no longer violates — the artifact is stale");
        std::process::exit(1);
    }
    println!("violation reproduced");
}
