//! Regenerate the paper's **Figure 2: 8-Proc Speedups** — speedups of
//! lmw-i / lmw-u / bar-i / bar-u over the nulled-synchronization
//! uniprocessor baseline, for all eight applications.

#![forbid(unsafe_code)]

use dsm_apps::Scale;
use dsm_bench::paper::FIG2_APPROX;
use dsm_bench::table::{bar, TextTable};
use dsm_bench::{harness, run_matrix};
use dsm_core::ProtocolKind;

fn main() {
    let apps: Vec<&'static str> = FIG2_APPROX.iter().map(|(a, _)| *a).collect();
    let protocols = ProtocolKind::BASE_FOUR;
    eprintln!(
        "running {} x {} matrix (8 procs, paper scale)...",
        apps.len(),
        protocols.len()
    );
    let outcomes = run_matrix(&apps, &protocols, Scale::Paper, 8);

    let mut t = TextTable::new(vec!["app", "lmw-i", "lmw-u", "bar-i", "bar-u", "paper(bu)"]);
    for (app, paper_vals) in &FIG2_APPROX {
        let mut cells = vec![app.to_string()];
        for &p in &protocols {
            let o = harness::find(&outcomes, app, p);
            cells.push(format!("{:.2}", o.speedup()));
        }
        cells.push(format!("~{:.1}", paper_vals[3]));
        t.row(cells);
    }
    println!("\nFigure 2 (measured): 8-processor speedups\n");
    print!("{}", t.render());

    println!("\nbar-u speedups (measured):\n");
    for (app, _) in &FIG2_APPROX {
        let o = harness::find(&outcomes, app, ProtocolKind::BarU);
        println!("{:>8} |{}", app, bar(o.speedup(), 8.0, 48));
    }

    // The prose claims to verify.
    let mut better = 0usize;
    let mut total = 0usize;
    let mut bu_gains: Vec<f64> = Vec::new();
    for (app, _) in &FIG2_APPROX {
        let li = harness::find(&outcomes, app, ProtocolKind::LmwI).speedup();
        let lu = harness::find(&outcomes, app, ProtocolKind::LmwU).speedup();
        let bu = harness::find(&outcomes, app, ProtocolKind::BarU).speedup();
        // "the home-based protocols outperform the homeless protocols"
        total += 1;
        if bu >= lu.max(li) * 0.98 {
            better += 1;
        }
        bu_gains.push(bu / lu.max(li) - 1.0);
    }
    let avg_gain = bu_gains.iter().sum::<f64>() / bu_gains.len() as f64;
    println!(
        "\nbar-u vs best lmw: home-based wins on {better}/{total} apps; \
         mean gain {:+.0}% (paper: ~+19%)",
        avg_gain * 100.0
    );
}
