//! dsm-scale driver: certified scaling formulas vs dynamic runs.
//!
//! ```text
//! scale [--smoke]
//! ```
//!
//! Two sections, both at small scale:
//!
//! 1. **Symbolic laws** — for every exact-plan app × modelable protocol,
//!    [`dsm_plan::derive_law`] probes the symbolic lowering at every `N`
//!    in a contiguous fit domain (plus extrapolation spot probes) and
//!    prints the certified piecewise-polynomial formula per metric along
//!    with the sparsity certificate (max copyset sharers, `N`-independent).
//! 2. **Dynamic sweep** — every app × all seven protocols × a node-count
//!    sweep, each cell a real run under the full dsm-check oracle stack
//!    (`bar-r` with its proven region table). Where a formula exists the
//!    cell's traffic counters are cross-checked: update messages against
//!    `net.msgs_of(UpdateFlush)`, update bytes against
//!    `net.bytes_of(UpdateFlush)`, notices against the checker's
//!    `version_bumps` (bar family) / `notices_recorded` (lmw family).
//!    Messages and notices must match *exactly*. Bytes must too for
//!    value-exact plans (verdict `exact`); for apps whose stencils can
//!    rewrite words with unchanged values (shallow, swm, tomcat), dynamic
//!    diffs shrink below the static model and the byte formula is instead
//!    certified as an upper bound (verdict `bound`).
//!
//! All output is a pure function of the configuration, so the committed
//! `results/scale-paper.txt` (full matrix, `N` up to 256) and
//! `results/scale-smoke.txt` (two-app CI cut) are `diff`ed byte-for-byte.
//! Any checker violation or formula mismatch exits nonzero.

#![forbid(unsafe_code)]

use std::sync::Arc;

use dsm_apps::{app_by_name, AppSpec, Scale};
use dsm_bench::table::TextTable;
use dsm_check::checked_run;
use dsm_core::{ProtocolKind, RegionTable, RunConfig};
use dsm_net::MsgKind;
use dsm_plan::{analyze, build_schedule, derive_law, measure, prove_regions, ScaleLaw, METRICS};

/// All seven real protocols, in the house order.
const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::LmwI,
    ProtocolKind::LmwU,
    ProtocolKind::BarI,
    ProtocolKind::BarU,
    ProtocolKind::BarS,
    ProtocolKind::BarM,
    ProtocolKind::BarR,
];

/// The subset the symbolic prover models: `bar-m` diffs span overdrive
/// phases and `bar-r` is validated by the regions cross-check instead.
const MODELED: [ProtocolKind; 5] = [
    ProtocolKind::LmwI,
    ProtocolKind::LmwU,
    ProtocolKind::BarI,
    ProtocolKind::BarU,
    ProtocolKind::BarS,
];

struct Args {
    apps: Vec<&'static str>,
    sweep: Vec<usize>,
    fit_hi: u64,
    spots: Vec<u64>,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        apps: dsm_apps::all_apps().iter().map(|s| s.name).collect(),
        sweep: vec![16, 64, 256],
        fit_hi: 96,
        spots: vec![128, 256],
        smoke: false,
    };
    for flag in std::env::args().skip(1) {
        match flag.as_str() {
            // Two-app cut for the fast CI diff gate; the full matrix runs
            // in its own job.
            "--smoke" => {
                args.smoke = true;
                args.apps = vec!["jacobi", "sor"];
                args.sweep = vec![16, 64];
                args.fit_hi = 80;
                args.spots = vec![128];
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

/// Prove the region table for one `(app, nprocs)` cell, exactly as the
/// `regions` report bin does.
fn region_table(spec: &AppSpec, nprocs: usize) -> RegionTable {
    let mut probe = spec.build_planned(Scale::Small);
    let an = analyze(probe.as_mut(), nprocs);
    let sched = build_schedule(&an.plan, ProtocolKind::BarR, an.iters);
    prove_regions(&an.plan, &an.layout, &sched)
}

/// Derive the certified law for one modelable cell.
fn cell_law(spec: &AppSpec, proto: ProtocolKind, fit_hi: u64, spots: &[u64]) -> ScaleLaw {
    derive_law(
        |n| {
            let mut app = spec.build_planned(Scale::Small);
            measure(app.as_mut(), proto, n as usize)
        },
        2..=fit_hi,
        spots,
    )
}

fn main() {
    let args = parse_args();
    println!("== dsm-scale: symbolic node-count laws and dynamic sweep ==");
    println!(
        "config: scale=small fit=2..={} spots={} sweep={}{}",
        args.fit_hi,
        args.spots
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        args.sweep
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        if args.smoke { " (smoke)" } else { "" },
    );
    println!();

    // Section 1: certified symbolic laws.
    let mut laws: Vec<(&str, ProtocolKind, ScaleLaw)> = Vec::new();
    println!("-- certified scaling laws (exact equality over the fit domain) --");
    for app in &args.apps {
        let spec = app_by_name(app).unwrap();
        let exact = spec.build_planned(Scale::Small).plan().exact;
        if !exact {
            println!("app={app} formulas=none reason=inexact-plan");
            continue;
        }
        for proto in MODELED {
            let law = cell_law(&spec, proto, args.fit_hi, &args.spots);
            for (m, f) in METRICS.iter().zip(&law.formulas) {
                println!(
                    "app={app} proto={} metric={m} pieces={} degree={} open_tail={} formula=[{}]",
                    proto.label(),
                    f.pieces.len(),
                    f.degree(),
                    f.has_open_tail(),
                    f.render(),
                );
            }
            let data_bound = law
                .sparsity
                .data_sharers
                .constant_tail()
                .map_or("growing".to_string(), |k| k.to_string());
            println!(
                "app={app} proto={} cert=sparsity data_page_bound={data_bound} \
                 data_sharers=[{}] max_sharers=[{}]",
                proto.label(),
                law.sparsity.data_sharers.render(),
                law.sparsity.max_sharers.render(),
            );
            laws.push((spec.name, proto, law));
        }
    }
    println!();

    // Section 2: dynamic sweep under the full oracle stack.
    println!("-- dynamic sweep (full dsm-check oracles; formula vs counters) --");
    let mut t = TextTable::new(vec![
        "app", "protocol", "N", "time us", "upd msgs", "upd kB", "notices", "formula", "verdict",
    ]);
    let mut dirty: Vec<String> = Vec::new();
    for app in &args.apps {
        let spec = app_by_name(app).unwrap();
        let value_exact = spec.build_planned(Scale::Small).plan().value_exact;
        for proto in PROTOCOLS {
            let law = laws
                .iter()
                .find(|(a, p, _)| *a == spec.name && *p == proto)
                .map(|(_, _, l)| l);
            for &n in &args.sweep {
                let regions = proto.is_region().then(|| Arc::new(region_table(&spec, n)));
                let mut cfg = RunConfig::with_nprocs(proto, n);
                cfg.regions.clone_from(&regions);
                // The symbolic laws cover the whole run; disable the
                // bench warmup window so net counters do too.
                cfg.warmup_iters = 0;
                let (run, check) = checked_run(spec.build(Scale::Small).as_mut(), cfg);
                let msgs = run.stats.net.msgs_of(MsgKind::UpdateFlush);
                let bytes = run.stats.net.bytes_of(MsgKind::UpdateFlush);
                let notices = if proto.is_bar() {
                    check.version_bumps
                } else {
                    check.notices_recorded
                };
                let clean = check.is_clean();
                let cell = format!("{app}-{}-n{n}", proto.label());
                // Cross-check the three traffic metrics with their dynamic
                // counterparts. Messages and notices are always exact
                // equality. Bytes are too for value-exact plans; for apps
                // whose stencils can rewrite a word with its previous
                // value (silent stores shrink dynamic diffs), the byte
                // formula is a certified *upper bound* instead.
                let formula = match law.and_then(|l| l.eval(n as u64)) {
                    Some(want) => {
                        let got = [msgs, bytes, notices];
                        let mut bound = false;
                        let bad: Vec<&str> = got
                            .iter()
                            .zip(&want[..3])
                            .zip(&METRICS[..3])
                            .filter(|((g, w), m)| {
                                if g == w {
                                    return false;
                                }
                                if **m == "update_bytes" && !value_exact && g < w {
                                    bound = true;
                                    return false;
                                }
                                true
                            })
                            .map(|(_, m)| *m)
                            .collect();
                        if bad.is_empty() {
                            if bound { "bound" } else { "exact" }.to_string()
                        } else {
                            for m in &bad {
                                let i = METRICS.iter().position(|x| x == m).unwrap();
                                eprintln!(
                                    "--- {cell}: formula mismatch on {m}: \
                                     predicted {} observed {}",
                                    want[i],
                                    [msgs, bytes, notices][i],
                                );
                            }
                            dirty.push(format!("{cell}:formula"));
                            format!("MISMATCH({})", bad.join(","))
                        }
                    }
                    None => "-".to_string(),
                };
                if !clean {
                    let _ = std::fs::create_dir_all("results/repro");
                    let path = format!("results/repro/scale-{cell}.txt");
                    let body = format!(
                        "scale sweep violation: {app} under {} at N={n}\n{}",
                        proto.label(),
                        check.summary()
                    );
                    if std::fs::write(&path, &body).is_ok() {
                        eprintln!("--- {cell}: violation report written to {path}");
                    }
                    eprintln!("{body}");
                    dirty.push(cell.clone());
                }
                t.row(vec![
                    spec.name.to_string(),
                    proto.label().to_string(),
                    n.to_string(),
                    (run.elapsed.as_ns() / 1000).to_string(),
                    msgs.to_string(),
                    (bytes / 1024).to_string(),
                    notices.to_string(),
                    formula,
                    if clean { "clean" } else { "FLAGGED" }.to_string(),
                ]);
            }
        }
    }
    print!("{}", t.render());
    if !dirty.is_empty() {
        eprintln!(
            "{} scale cell(s) flagged: {}",
            dirty.len(),
            dirty.join(", ")
        );
        std::process::exit(1);
    }
}
