//! Regenerate the paper's **Table 1: Base Statistics** — diff creations,
//! remote misses, messages, and data (KB) for lmw-i / lmw-u / bar-i / bar-u
//! across the eight applications on 8 processors.
//!
//! Absolute counts differ from the paper (its exact problem sizes and
//! measured windows are not recoverable); the shapes are the claims:
//! update protocols eliminate misses, the home effect cuts diffs, bar-i
//! moves whole pages (more data), bar-u needs the fewest messages.

#![forbid(unsafe_code)]

use dsm_apps::Scale;
use dsm_bench::paper::TABLE1;
use dsm_bench::table::{fmt_count, TextTable};
use dsm_bench::{harness, run_matrix};
use dsm_core::ProtocolKind;

fn main() {
    let apps: Vec<&'static str> = TABLE1.iter().map(|r| r.app).collect();
    let protocols = ProtocolKind::BASE_FOUR;
    eprintln!(
        "running {} x {} matrix (8 procs, paper scale)...",
        apps.len(),
        protocols.len()
    );
    let outcomes = run_matrix(&apps, &protocols, Scale::Paper, 8);

    let headers = vec![
        "app",
        "diffs:li",
        "lu",
        "bi",
        "bu",
        "miss:li",
        "lu",
        "bi",
        "bu",
        "msgs:li",
        "lu",
        "bi",
        "bu",
        "dataKB:li",
        "lu",
        "bi",
        "bu",
    ];
    let mut t = TextTable::new(headers.clone());
    for app in &apps {
        let mut cells: Vec<String> = vec![app.to_string()];
        for metric in 0..4 {
            for &p in &protocols {
                let o = harness::find(&outcomes, app, p);
                let s = &o.report.stats;
                let v = match metric {
                    0 => fmt_count(s.diffs_created),
                    1 => fmt_count(s.remote_misses),
                    2 => fmt_count(s.paper_messages()),
                    _ => fmt_count(s.data_kbytes().round() as u64),
                };
                cells.push(v);
            }
        }
        t.row(cells);
    }
    println!("\nTable 1 (measured): Base Statistics — 8 processors, paper scale\n");
    print!("{}", t.render());

    let mut tp = TextTable::new(headers);
    for r in &TABLE1 {
        let mut cells: Vec<String> = vec![r.app.to_string()];
        for metric in 0..4 {
            let arr = match metric {
                0 => r.diffs,
                1 => r.misses,
                2 => r.messages,
                _ => r.data_kb,
            };
            cells.extend(arr.iter().map(|v| fmt_count(*v)));
        }
        tp.row(cells);
    }
    println!("\nTable 1 (paper): Base Statistics — for shape comparison\n");
    print!("{}", tp.render());

    // Shape checks the paper's prose makes.
    let mut shape_violations = 0;
    for app in &apps {
        let lu = harness::find(&outcomes, app, ProtocolKind::LmwU);
        let bu = harness::find(&outcomes, app, ProtocolKind::BarU);
        if *app != "barnes" && lu.report.stats.remote_misses != 0 {
            eprintln!("SHAPE: {app} lmw-u misses != 0");
            shape_violations += 1;
        }
        if bu.report.stats.remote_misses != 0 {
            eprintln!("SHAPE: {app} bar-u misses != 0");
            shape_violations += 1;
        }
    }
    if shape_violations == 0 {
        println!(
            "\nall Table-1 shape checks passed (update protocols eliminate steady-state misses)"
        );
    } else {
        println!("\n{shape_violations} shape check(s) FAILED");
        std::process::exit(1);
    }
}
