//! Fault-injection campaign: every requested app × protocol under a sweep
//! of named wire-fault profiles, each run under the full dsm-check stack.
//!
//! ```text
//! campaign [--apps a,b,..] [--protocols lmw-i,bar-u,..] [--nprocs N]
//!          [--scale small|paper] [--smoke]
//! ```
//!
//! For every cell the zero-fault run is the reference: the campaign
//! reports the fault profile's virtual-time degradation against it and
//! asserts the checksum is unchanged — a lossy wire may slow a correct
//! protocol down, it may never change its answer. Retransmission and
//! duplication telemetry comes from the transport's own accounting
//! (`NetStats`), so the table doubles as a goodput-overhead summary.
//!
//! All output is a pure function of the run configuration (virtual time,
//! no wall-clock), so the committed `results/campaign.txt` and
//! `results/campaign-smoke.txt` are `diff`ed byte-for-byte in CI. Any
//! violation writes the offending check report under `results/repro/` and
//! exits nonzero.

#![forbid(unsafe_code)]

use std::sync::Arc;

use dsm_apps::{all_apps, app_by_name, AppSpec, Scale};
use dsm_bench::table::TextTable;
use dsm_check::checked_run;
use dsm_core::{ProtocolKind, RegionTable, RunConfig};
use dsm_plan::{analyze, build_schedule, prove_regions};
use dsm_sim::FaultProfile;

/// All seven real protocols: the five unconditionally-sound ones,
/// `bar-m` (write sets stable on every paper app), and `bar-r` (runs with
/// its proven region table installed — the campaign doubles as the fault
/// gate for the region fast paths).
const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::LmwI,
    ProtocolKind::LmwU,
    ProtocolKind::BarI,
    ProtocolKind::BarU,
    ProtocolKind::BarS,
    ProtocolKind::BarM,
    ProtocolKind::BarR,
];

fn protocol_by_label(label: &str) -> ProtocolKind {
    let all = [
        ProtocolKind::Seq,
        ProtocolKind::LmwI,
        ProtocolKind::LmwU,
        ProtocolKind::BarI,
        ProtocolKind::BarU,
        ProtocolKind::BarS,
        ProtocolKind::BarM,
        ProtocolKind::BarR,
    ];
    all.into_iter()
        .find(|p| p.label() == label)
        .unwrap_or_else(|| panic!("unknown protocol {label:?}"))
}

/// The campaign's named fault profiles, zero-fault reference first.
fn profiles(nprocs: usize) -> Vec<(&'static str, FaultProfile)> {
    vec![
        ("none", FaultProfile::none()),
        ("iid-loss", FaultProfile::iid_loss()),
        ("burst-loss", FaultProfile::burst_loss()),
        ("dup-reorder", FaultProfile::dup_reorder()),
        ("slow-node", FaultProfile::slow_node(nprocs - 1)),
    ]
}

struct Args {
    apps: Vec<&'static str>,
    protocols: Vec<ProtocolKind>,
    nprocs: usize,
    scale: Scale,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        apps: all_apps().iter().map(|s| s.name).collect(),
        protocols: PROTOCOLS.to_vec(),
        nprocs: 4,
        scale: Scale::Small,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--smoke" {
            // A two-app, two-protocol cut of the matrix for the fast CI
            // diff gate; the full campaign runs in its own job.
            args.smoke = true;
            args.apps = vec!["jacobi", "fft"];
            args.protocols = vec![ProtocolKind::LmwU, ProtocolKind::BarU, ProtocolKind::BarR];
            continue;
        }
        let val = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--apps" => {
                args.apps = val
                    .split(',')
                    .map(|a| {
                        app_by_name(a)
                            .unwrap_or_else(|| panic!("unknown app {a:?}"))
                            .name
                    })
                    .collect();
            }
            "--protocols" => {
                args.protocols = val.split(',').map(protocol_by_label).collect();
            }
            "--nprocs" => args.nprocs = val.parse().expect("--nprocs"),
            "--scale" => {
                args.scale = match val.as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale {other:?}"),
                }
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

/// Prove the region table for one (app, nprocs, scale) cell, exactly as
/// the `regions` report bin does.
fn region_table(spec: &AppSpec, nprocs: usize, scale: Scale) -> RegionTable {
    let mut probe = spec.build_planned(scale);
    let an = analyze(probe.as_mut(), nprocs);
    let sched = build_schedule(&an.plan, ProtocolKind::BarR, an.iters);
    prove_regions(&an.plan, &an.layout, &sched)
}

#[allow(clippy::cast_precision_loss)]
fn percent(part: u64, base: u64) -> String {
    format!("{:+.1}%", part as f64 / base.max(1) as f64 * 100.0)
}

fn main() {
    let args = parse_args();
    assert!(args.nprocs >= 2, "a campaign needs at least two processes");
    let profiles = profiles(args.nprocs);
    println!("== wire fault-injection campaign ==");
    println!(
        "config: nprocs={} scale={} profiles={}",
        args.nprocs,
        match args.scale {
            Scale::Small => "small",
            Scale::Paper => "paper",
        },
        profiles
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(","),
    );
    println!();

    let mut t = TextTable::new(vec![
        "app", "protocol", "profile", "time us", "degrade", "retrans", "retx kB", "dups", "result",
        "verdict",
    ]);
    let mut dirty: Vec<String> = Vec::new();
    for app in &args.apps {
        let spec = app_by_name(app).unwrap();
        for &protocol in &args.protocols {
            // bar-r cells run with the app's proven region table installed,
            // so the campaign exercises the twin-free capture, clipped
            // pushes, and elision under every fault profile.
            let regions = protocol
                .is_region()
                .then(|| Arc::new(region_table(&spec, args.nprocs, args.scale)));
            let mut base_elapsed = 0u64;
            let mut base_checksum = 0.0f64;
            for (pname, profile) in &profiles {
                let mut cfg = RunConfig::with_nprocs(protocol, args.nprocs);
                cfg.regions.clone_from(&regions);
                cfg.sim.fault = profile.clone();
                let (run, check) = checked_run(spec.build(args.scale).as_mut(), cfg);
                let elapsed = run.elapsed.as_ns();
                let clean = check.is_clean();
                let (degrade, result) = if profile.is_none() {
                    base_elapsed = elapsed;
                    base_checksum = run.checksum;
                    ("base".to_string(), "ok".to_string())
                } else {
                    (
                        percent(elapsed.saturating_sub(base_elapsed), base_elapsed),
                        if run.checksum == base_checksum {
                            "ok".to_string()
                        } else {
                            "DIFF".to_string()
                        },
                    )
                };
                if !clean || result == "DIFF" {
                    let name = format!("{app}-{}-{pname}", protocol.label());
                    let _ = std::fs::create_dir_all("results/repro");
                    let path = format!("results/repro/campaign-{name}.txt");
                    let body = format!(
                        "campaign violation: {app} under {} with profile {pname}\n\
                         checksum: run {} vs baseline {}\n{}",
                        protocol.label(),
                        run.checksum,
                        base_checksum,
                        check.summary()
                    );
                    if std::fs::write(&path, &body).is_ok() {
                        eprintln!("--- {name}: violation report written to {path}");
                    }
                    eprintln!("{body}");
                    dirty.push(name);
                }
                t.row(vec![
                    spec.name.to_string(),
                    protocol.label().to_string(),
                    (*pname).to_string(),
                    (elapsed / 1000).to_string(),
                    degrade,
                    run.stats.net.retransmits.to_string(),
                    (run.stats.net.retransmit_bytes / 1024).to_string(),
                    run.stats.net.flushes_duplicated.to_string(),
                    result,
                    if clean { "clean" } else { "FLAGGED" }.to_string(),
                ]);
            }
        }
    }
    print!("{}", t.render());
    if !dirty.is_empty() {
        eprintln!(
            "{} campaign cell(s) flagged: {}",
            dirty.len(),
            dirty.join(", ")
        );
        std::process::exit(1);
    }
}
