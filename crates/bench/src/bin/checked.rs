//! Checked-mode runner: every requested app × protocol under the full
//! dsm-check instrumentation (happens-before races, the LRC coherence
//! oracle, protocol invariants), summarized as one table row per run.
//!
//! ```text
//! checked [--apps a,b,..] [--protocols lmw-i,bar-u,..] [--nprocs N] [--scale small|paper]
//! ```
//!
//! Defaults: all eight paper apps, the five unconditionally-sound protocols
//! (lmw-i, lmw-u, bar-i, bar-u, bar-s), 4 processes, small scale. Exits
//! nonzero if any run flags a violation, so CI can use it as a smoke gate.

#![forbid(unsafe_code)]

use dsm_apps::{all_apps, app_by_name, Scale};
use dsm_bench::table::TextTable;
use dsm_check::checked_run;
use dsm_core::{ProtocolKind, RunConfig};

const SOUND: [ProtocolKind; 5] = [
    ProtocolKind::LmwI,
    ProtocolKind::LmwU,
    ProtocolKind::BarI,
    ProtocolKind::BarU,
    ProtocolKind::BarS,
];

fn protocol_by_label(label: &str) -> ProtocolKind {
    let all = [
        ProtocolKind::Seq,
        ProtocolKind::LmwI,
        ProtocolKind::LmwU,
        ProtocolKind::BarI,
        ProtocolKind::BarU,
        ProtocolKind::BarS,
        ProtocolKind::BarM,
    ];
    all.into_iter()
        .find(|p| p.label() == label)
        .unwrap_or_else(|| panic!("unknown protocol {label:?}"))
}

struct Args {
    apps: Vec<&'static str>,
    protocols: Vec<ProtocolKind>,
    nprocs: usize,
    scale: Scale,
}

fn parse_args() -> Args {
    let mut args = Args {
        apps: all_apps().iter().map(|s| s.name).collect(),
        protocols: SOUND.to_vec(),
        nprocs: 4,
        scale: Scale::Small,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--apps" => {
                args.apps = val
                    .split(',')
                    .map(|a| {
                        app_by_name(a)
                            .unwrap_or_else(|| panic!("unknown app {a:?}"))
                            .name
                    })
                    .collect();
            }
            "--protocols" => {
                args.protocols = val.split(',').map(protocol_by_label).collect();
            }
            "--nprocs" => args.nprocs = val.parse().expect("--nprocs"),
            "--scale" => {
                args.scale = match val.as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale {other:?}"),
                }
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut t = TextTable::new(vec![
        "app",
        "protocol",
        "events",
        "reads",
        "writes",
        "barriers",
        "hb edges",
        "races",
        "stale",
        "invariant",
        "verdict",
    ]);
    let mut dirty = 0usize;
    for app in &args.apps {
        let spec = app_by_name(app).unwrap();
        for &protocol in &args.protocols {
            let cfg = RunConfig::with_nprocs(protocol, args.nprocs);
            let (_, check) = checked_run(spec.build(args.scale).as_mut(), cfg);
            let clean = check.is_clean();
            if !clean {
                dirty += 1;
                eprintln!(
                    "--- {} under {}:\n{}",
                    spec.name,
                    protocol.label(),
                    check.summary()
                );
            }
            t.row(vec![
                spec.name.to_string(),
                protocol.label().to_string(),
                check.events.to_string(),
                check.reads.to_string(),
                check.writes.to_string(),
                check.barriers.to_string(),
                check.hb_edges.to_string(),
                check.races().to_string(),
                check.stale_reads().to_string(),
                check.invariant_violations().to_string(),
                if clean { "clean" } else { "FLAGGED" }.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    if dirty > 0 {
        eprintln!("{dirty} run(s) flagged violations");
        std::process::exit(1);
    }
}
