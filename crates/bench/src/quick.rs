//! A minimal, dependency-free micro-benchmark runner with a
//! criterion-compatible calling convention.
//!
//! The workspace builds offline, so the bench targets cannot pull in an
//! external harness; this module reimplements the small API surface the
//! bench files use (`Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, `Throughput`, plus the
//! `criterion_group!` / `criterion_main!` macros). Timing is a simple
//! adaptive loop: iterations double until a sample exceeds the target
//! measurement window, and the mean ns/iter of the final sample is
//! reported. Good enough for regression eyeballing; not a statistics
//! engine.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How the workload size is declared for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched`; accepted for API compatibility,
/// the adaptive loop sizes batches itself.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// Top-level handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        run_one("", name.as_ref(), None, f);
    }
}

/// A named benchmark group (prefixes its members' names).
pub struct BenchGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchGroup {
    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sample-count hint; accepted for API compatibility and ignored
    /// (the adaptive loop fixes its own measurement window).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, name.as_ref(), self.throughput, f);
    }

    /// End the group (no-op; exists for criterion compatibility).
    pub fn finish(&mut self) {}
}

/// Measurement handle: the closure calls exactly one of `iter` /
/// `iter_batched`, which runs the adaptive timing loop and records the
/// final sample.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

/// Target measurement window per benchmark. Overridable via the
/// `DSM_BENCH_MS` environment variable for quick smoke runs.
fn target_window() -> Duration {
    let ms = std::env::var("DSM_BENCH_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(100);
    Duration::from_millis(ms.max(1))
}

impl Bencher {
    /// Time `f`, excluding nothing: the routine is the whole iteration.
    /// Named after the criterion-style convention (`b.iter(...)`), not the
    /// `Iterator` protocol.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..2 {
            black_box(f());
        }
        let target = target_window();
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= target || iters >= 1 << 22 {
                self.total = dt;
                self.iters = iters;
                return;
            }
            iters *= 4;
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup cost is kept
    /// outside the timed region by pre-building each batch.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        let target = target_window();
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed();
            if dt >= target || iters >= 1 << 22 {
                self.total = dt;
                self.iters = iters;
                return;
            }
            iters *= 4;
        }
    }
}

fn run_one(
    group: &str,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let full = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.iters == 0 {
        println!("bench {full:<40} (no measurement)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / 1e6 / (ns / 1e9);
            format!("  {mbps:10.1} MB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (ns / 1e9);
            format!("  {eps:10.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "bench {full:<40} {ns:12.1} ns/iter  ({} iters){rate}",
        b.iters
    );
}

/// Criterion-compatible group declaration: defines a function that runs
/// each listed bench function against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::quick::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Criterion-compatible entry point: runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
