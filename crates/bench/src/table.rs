//! Plain-text table rendering for the harness binaries.

/// A simple right-aligned text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render with a header separator; first column left-aligned, the rest
    /// right-aligned.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            use std::fmt::Write;
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(line, "{c:<w$}", w = width[i]);
                } else {
                    let _ = write!(line, "{c:>w$}", w = width[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Format a count with thousands separators (readability of Table 1).
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// A simple horizontal ASCII bar.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if !(value.is_finite() && max > 0.0) {
        return String::new();
    }
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["app", "x", "longcol"]);
        t.row(vec!["sor", "1", "2"]);
        t.row(vec!["jacobi", "100", "3"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("app"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right alignment: "100" ends at same column as "x" header's end.
        assert!(lines[3].contains("100"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
    }
}
