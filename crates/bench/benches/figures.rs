//! Figure-harness smoke benchmarks: exercise the same code paths as the
//! `table1` / `fig2` / `fig4` binaries at test scale, so `cargo bench`
//! covers the full reproduction pipeline.

use dsm_bench::quick::Criterion;
use dsm_bench::{criterion_group, criterion_main};

use dsm_apps::Scale;
use dsm_bench::{harness, run_matrix};
use dsm_core::ProtocolKind;

fn bench_figure_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_small");
    g.sample_size(10);

    g.bench_function("table1_mini", |b| {
        b.iter(|| {
            let outcomes = run_matrix(
                &["sor", "jacobi"],
                &ProtocolKind::BASE_FOUR,
                Scale::Small,
                4,
            );
            let bu = harness::find(&outcomes, "sor", ProtocolKind::BarU);
            assert_eq!(bu.report.stats.remote_misses, 0);
            outcomes.len()
        });
    });

    g.bench_function("fig4_mini", |b| {
        b.iter(|| {
            let outcomes = run_matrix(
                &["sor"],
                &[ProtocolKind::BarU, ProtocolKind::BarS, ProtocolKind::BarM],
                Scale::Small,
                4,
            );
            let bu = harness::find(&outcomes, "sor", ProtocolKind::BarU);
            let bm = harness::find(&outcomes, "sor", ProtocolKind::BarM);
            assert_eq!(
                bu.report.stats.paper_messages(),
                bm.report.stats.paper_messages()
            );
            outcomes.len()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_figure_pipelines);
criterion_main!(benches);
