//! Microbenchmarks of the substrate primitives: diffs, twins, page stores,
//! copysets, the deterministic RNG, and the FFT kernel.

use dsm_bench::quick::{BatchSize, Criterion, Throughput};
use dsm_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use dsm_apps::fft_math::fft_inplace;
use dsm_core::{Cluster, ProtocolKind, RunConfig, SharedArray};
use dsm_sim::DetRng;
use dsm_vm::{BufPool, Diff, Frame, PageBuf, PageId, PageStore, Protection};

const PAGE: usize = 8192;

fn random_page(rng: &mut DetRng) -> PageBuf {
    let mut p = PageBuf::zeroed(PAGE);
    for w in p.typed_mut::<u64>(0..PAGE) {
        *w = rng.next_u64();
    }
    p
}

/// A page pair differing in `runs` contiguous 64-byte regions.
fn page_pair(runs: usize) -> (PageBuf, PageBuf) {
    let mut rng = DetRng::new(42);
    let twin = random_page(&mut rng);
    let mut cur = twin.clone();
    for i in 0..runs {
        let start = (i * PAGE / runs.max(1)) & !7;
        for b in &mut cur.bytes_mut()[start..start + 64] {
            *b ^= 0x5A;
        }
    }
    (twin, cur)
}

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    g.throughput(Throughput::Bytes(PAGE as u64));
    for runs in [0usize, 4, 32, 128] {
        let (twin, cur) = page_pair(runs);
        g.bench_function(format!("between/{runs}_runs"), |b| {
            b.iter(|| Diff::between(PageId(0), black_box(&twin), black_box(&cur)));
        });
        let diff = Diff::between(PageId(0), &twin, &cur);
        g.bench_function(format!("apply/{runs}_runs"), |b| {
            b.iter_batched(
                || twin.clone(),
                |mut target| diff.apply_to(&mut target),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

/// Dirty-range tracked diffing: a twinned frame is written in `runs`
/// sparse spots (or densely), then diffed. The tracked path scans only
/// the recorded dirty ranges; the full scan walks the whole page. The
/// gap between the two is the win `Frame::diff_against_twin` buys the
/// barrier paths of every protocol.
fn bench_ranged_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranged_diff");
    g.throughput(Throughput::Bytes(PAGE as u64));
    for (label, writes) in [("sparse_4", 4usize), ("dense_128", 128)] {
        let mut frame = Frame::new(PAGE);
        let mut rng = DetRng::new(9);
        frame.fill_from(&random_page(&mut rng));
        frame.make_twin();
        for i in 0..writes {
            let at = (i * PAGE / writes) & !7;
            frame.write_at(at, &[0xA5u8; 8]);
        }
        g.bench_function(format!("tracked/{label}"), |b| {
            b.iter(|| black_box(&frame).diff_against_twin(PageId(0)));
        });
        g.bench_function(format!("full_scan/{label}"), |b| {
            let twin = frame.twin().expect("twinned");
            b.iter(|| Diff::between(PageId(0), black_box(twin), black_box(frame.data())));
        });
        g.bench_function(format!("tracked_pooled/{label}"), |b| {
            let mut pool = BufPool::new();
            b.iter(|| {
                let d = black_box(&frame).diff_against_twin_in(PageId(0), &mut pool);
                pool.put_diff(d);
            });
        });
    }
    g.finish();
}

/// Structural state hashing with the per-frame cache: a clean re-hash hits
/// every cache, a sparse one re-walks a single mutated frame, and the
/// uncached variant re-walks everything (the explorer's old cost model).
fn bench_state_hash(c: &mut Criterion) {
    const WORDS: usize = 4096;
    let mut cluster = Cluster::new(RunConfig::with_nprocs(ProtocolKind::BarU, 4));
    let arr: SharedArray<f64> = {
        let mut s = cluster.setup_ctx();
        s.alloc_array::<f64>("bench", WORDS)
    };
    cluster.set_phases_per_iter(1);
    cluster.distribute();
    // Fault every page in, then settle at a barrier.
    for pid in 0..4 {
        let mut ctx = cluster.exec_ctx(pid);
        for w in (pid * WORDS / 4)..((pid + 1) * WORDS / 4) {
            arr.set(&mut ctx, w, w as f64);
        }
    }
    cluster.barrier_app(None);
    let mut g = c.benchmark_group("state_hash");
    g.bench_function("cached_clean", |b| {
        b.iter(|| black_box(&cluster).state_hash());
    });
    g.bench_function("cached_sparse", |b| {
        let mut i = 0u64;
        b.iter(|| {
            {
                let mut ctx = cluster.exec_ctx(0);
                arr.set(&mut ctx, 0, i as f64);
                i += 1;
            }
            black_box(&cluster).state_hash()
        });
    });
    g.bench_function("uncached_dense", |b| {
        b.iter(|| black_box(&cluster).state_hash_uncached());
    });
    g.finish();
}

fn bench_twin(c: &mut Criterion) {
    let mut rng = DetRng::new(7);
    let page = random_page(&mut rng);
    c.bench_function("twin/copy_8k", |b| {
        b.iter_batched(
            || PageBuf::zeroed(PAGE),
            |mut t| t.copy_from(black_box(&page)),
            BatchSize::SmallInput,
        );
    });
}

fn bench_page_store(c: &mut Criterion) {
    let mut store = PageStore::new(PAGE);
    store.ensure_pages(1024);
    for i in 0..1024 {
        store.set_protection(PageId(i), Protection::Read);
    }
    c.bench_function("page_store/check_1k", |b| {
        b.iter(|| {
            let mut faults = 0usize;
            for i in 0..1024u32 {
                if store.check(PageId(i), i % 2 == 0).is_some() {
                    faults += 1;
                }
            }
            black_box(faults)
        });
    });
}

fn bench_copyset(c: &mut Criterion) {
    use dsm_core::proto::copyset::CopySet;
    c.bench_function("copyset/build_iter", |b| {
        b.iter(|| {
            let mut s = CopySet::EMPTY;
            for pid in (0..64).step_by(3) {
                s.insert(pid);
            }
            black_box(s.others(3).sum::<usize>())
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64_x1000", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        });
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_kernel");
    for n in [64usize, 256, 1024] {
        let mut rng = DetRng::new(5);
        let re: Vec<f64> = (0..n).map(|_| rng.unit_f64()).collect();
        let im: Vec<f64> = (0..n).map(|_| rng.unit_f64()).collect();
        g.bench_function(format!("fft_{n}"), |b| {
            b.iter_batched(
                || (re.clone(), im.clone()),
                |(mut r, mut i)| fft_inplace(&mut r, &mut i, false),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_diff,
    bench_ranged_diff,
    bench_state_hash,
    bench_twin,
    bench_page_store,
    bench_copyset,
    bench_rng,
    bench_fft
);
criterion_main!(benches);
