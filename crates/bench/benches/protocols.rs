//! End-to-end protocol benchmarks: one full small-scale application run
//! per protocol (host wall-clock of the simulation itself — useful for
//! tracking simulator performance regressions).

use dsm_bench::quick::Criterion;
use dsm_bench::{criterion_group, criterion_main};

use dsm_apps::{app_by_name, Scale};
use dsm_core::{run_app, ProtocolKind, RunConfig};

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_sor_small");
    g.sample_size(20);
    for protocol in [
        ProtocolKind::Seq,
        ProtocolKind::LmwI,
        ProtocolKind::LmwU,
        ProtocolKind::BarI,
        ProtocolKind::BarU,
        ProtocolKind::BarS,
        ProtocolKind::BarM,
    ] {
        let nprocs = if protocol == ProtocolKind::Seq { 1 } else { 4 };
        g.bench_function(protocol.label(), |b| {
            b.iter(|| {
                let spec = app_by_name("sor").unwrap();
                run_app(
                    spec.build(Scale::Small).as_mut(),
                    RunConfig::with_nprocs(protocol, nprocs),
                )
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e2e_apps_bar_u");
    g.sample_size(10);
    for name in ["jacobi", "fft", "swm", "barnes"] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let spec = app_by_name(name).unwrap();
                run_app(
                    spec.build(Scale::Small).as_mut(),
                    RunConfig::with_nprocs(ProtocolKind::BarU, 4),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
