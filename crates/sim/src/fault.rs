//! Wire fault profiles.
//!
//! A [`FaultProfile`] describes how the interconnect misbehaves: iid and
//! bursty loss, duplication, reordering, and a per-node slowdown. The
//! profile itself is pure data — it owns no generator state. Every random
//! decision it implies is drawn through [`crate::sched::Scheduler`] hooks
//! (`wire_chance` / `flush_duplicate`), so the same profile replays
//! bit-identically under the default scheduler and can be enumerated by an
//! exploration scheduler instead.
//!
//! The zero profile ([`FaultProfile::none`], also `Default`) is special: the
//! transport layer must not draw any generator state and must not perturb a
//! single cost leg under it, so a lossless run is bit-identical to a build
//! without the transport at all. `Scheduler::wire_chance` with `prob <= 0`
//! consuming no state (mirroring `DetRng::chance`) is part of that contract.

/// How the simulated wire loses, duplicates, delays, and reorders traffic.
///
/// Probabilities are per message (per attempt, for retransmitted reliable
/// kinds). All fields independent; `none()` disables everything.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultProfile {
    /// iid probability that any single network traversal is lost. Reliable
    /// kinds retransmit; droppable flushes are simply gone.
    pub loss: f64,
    /// Probability that a successful traversal *starts* a loss burst on its
    /// channel: the next `burst_len` messages on that (src, dst) channel are
    /// lost deterministically (Gilbert-style bad state).
    pub burst_start: f64,
    /// Number of consecutive messages lost once a burst starts.
    pub burst_len: u32,
    /// Probability that a delivered message is also duplicated in flight.
    /// Reliable kinds suppress the copy by sequence number; duplicated
    /// flushes genuinely arrive twice and must be idempotent.
    pub duplicate: f64,
    /// Probability that a delivered message takes a slow path (its wire leg
    /// is stretched). Per-channel FIFO at the receiver turns this into
    /// head-of-line delay for reliable kinds rather than visible reordering.
    pub reorder: f64,
    /// A node whose network interface runs slow: every leg of a message
    /// touching this node is scaled by `slow_factor`.
    pub slow_node: Option<usize>,
    /// Leg multiplier for `slow_node` traffic (>= 1).
    pub slow_factor: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// The faultless wire: today's behaviour, bit for bit.
    pub fn none() -> FaultProfile {
        FaultProfile {
            loss: 0.0,
            burst_start: 0.0,
            burst_len: 0,
            duplicate: 0.0,
            reorder: 0.0,
            slow_node: None,
            slow_factor: 1.0,
        }
    }

    /// True if the profile cannot affect any message. The transport uses
    /// this to skip the fault path entirely (no draws, no channel state).
    pub fn is_none(&self) -> bool {
        self.loss <= 0.0
            && self.burst_start <= 0.0
            && self.duplicate <= 0.0
            && self.reorder <= 0.0
            && self.slow_node.is_none()
    }

    /// Campaign profile: 2% independent loss on every traversal.
    pub fn iid_loss() -> FaultProfile {
        FaultProfile {
            loss: 0.02,
            ..FaultProfile::none()
        }
    }

    /// Campaign profile: rare losses that arrive in bursts of four, plus a
    /// little background loss.
    pub fn burst_loss() -> FaultProfile {
        FaultProfile {
            loss: 0.005,
            burst_start: 0.01,
            burst_len: 4,
            ..FaultProfile::none()
        }
    }

    /// Campaign profile: a noisy but lossless switch — duplicated and
    /// slow-pathed packets, nothing missing.
    pub fn dup_reorder() -> FaultProfile {
        FaultProfile {
            duplicate: 0.02,
            reorder: 0.05,
            ..FaultProfile::none()
        }
    }

    /// Campaign profile: node `node`'s interface runs at half speed.
    pub fn slow_node(node: usize) -> FaultProfile {
        FaultProfile {
            slow_node: Some(node),
            slow_factor: 2.0,
            ..FaultProfile::none()
        }
    }

    /// Validate against a cluster size. Returns human-readable violations
    /// (empty == valid).
    pub fn validate(&self, nprocs: usize) -> Vec<String> {
        let mut errs = Vec::new();
        for (name, p) in [
            ("loss", self.loss),
            ("burst_start", self.burst_start),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) {
                errs.push(format!("fault.{name} {p} out of [0,1]"));
            }
        }
        if self.burst_start > 0.0 && self.burst_len == 0 {
            errs.push("fault.burst_len must be >= 1 when burst_start > 0".into());
        }
        if self.slow_factor < 1.0 {
            errs.push(format!(
                "fault.slow_factor {} must be >= 1",
                self.slow_factor
            ));
        }
        if let Some(n) = self.slow_node {
            if n >= nprocs {
                errs.push(format!(
                    "fault.slow_node {n} out of range (nprocs {nprocs})"
                ));
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultProfile::none().is_none());
        assert!(FaultProfile::default().is_none());
        assert!(FaultProfile::none().validate(8).is_empty());
    }

    #[test]
    fn named_profiles_are_active_and_valid() {
        for p in [
            FaultProfile::iid_loss(),
            FaultProfile::burst_loss(),
            FaultProfile::dup_reorder(),
            FaultProfile::slow_node(1),
        ] {
            assert!(!p.is_none());
            assert!(p.validate(8).is_empty(), "{p:?}");
        }
    }

    #[test]
    fn rejects_out_of_range_probability() {
        let p = FaultProfile {
            loss: 1.5,
            ..FaultProfile::none()
        };
        assert!(!p.validate(8).is_empty());
    }

    #[test]
    fn rejects_burst_without_length() {
        let p = FaultProfile {
            burst_start: 0.1,
            burst_len: 0,
            ..FaultProfile::none()
        };
        assert!(!p.validate(8).is_empty());
    }

    #[test]
    fn rejects_slow_node_out_of_range() {
        assert!(!FaultProfile::slow_node(8).validate(8).is_empty());
        assert!(FaultProfile::slow_node(7).validate(8).is_empty());
    }

    #[test]
    fn rejects_sub_unit_slow_factor() {
        let p = FaultProfile {
            slow_node: Some(0),
            slow_factor: 0.5,
            ..FaultProfile::none()
        };
        assert!(!p.validate(8).is_empty());
    }
}
