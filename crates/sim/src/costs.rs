//! The cost model: how long each primitive takes on the simulated machine.
//!
//! Default values reproduce the paper's measured environment (§3.2): an
//! 8-node IBM SP-2, 66 MHz POWER2 processors, the High-Performance Switch at
//! ~40 MB/s per link, CVM over UDP/IP on AIX:
//!
//! * simple RPC round trip: **160 µs**
//! * remote page fault, full 8 KB service: **≈939 µs**
//! * segv delivery to a user-level handler: **128 µs**
//! * `mprotect`: **12 µs** best case (see [`crate::stress`] for the
//!   location-dependent degradation)
//!
//! The composed costs below are calibrated so the primitive paths land on
//! the paper's numbers; each helper documents its composition.

use crate::time::Time;

/// Cost constants for every primitive the simulation charges.
///
/// All fields are public so experiments can ablate individual costs; the
/// `Default` instance is the paper's SP-2/AIX environment.
///
/// ```
/// use dsm_sim::{CostModel, Time};
///
/// let costs = CostModel::default();
/// // The paper's measured constants:
/// assert_eq!(costs.rpc_round_trip(0), Time::from_us(160));
/// assert!((costs.remote_page_fault(8192).as_us_f64() - 939.0).abs() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Sender-side per-message syscall + protocol-stack overhead (ns).
    pub send_overhead_ns: u64,
    /// Receiver-side per-message syscall + dispatch overhead (ns).
    pub recv_overhead_ns: u64,
    /// Wire latency of a small message on the HPS (ns).
    pub wire_latency_ns: u64,
    /// Per-payload-byte transfer cost (ns); 25 ns/B == 40 MB/s.
    pub per_byte_ns: u64,
    /// Per-payload-byte CPU cost at each endpoint (UDP copies through the
    /// socket buffers on a 66 MHz machine, ~70 MB/s memcpy).
    pub copy_per_byte_ns: u64,
    /// SIGSEGV delivery to a user-level handler (ns).
    pub segv_ns: u64,
    /// `mprotect` best-case cost (ns); multiplied by the stress model.
    pub mprotect_ns: u64,
    /// Fixed fault-handler overhead added to a *remote* page fault beyond
    /// segv + RPC + bytes + validate, calibrated so an 8 KB page fault costs
    /// ≈939 µs total (the paper's measured value).
    pub page_fault_fixed_ns: u64,
    /// Per-byte cost of creating a twin (page copy) (ns/B).
    pub twin_copy_per_byte_ns: u64,
    /// Per-byte cost of the page-length word comparison when creating a
    /// diff (ns/B).
    pub diff_scan_per_byte_ns: u64,
    /// Per-byte cost of applying a diff's runs to a page (ns/B).
    pub diff_apply_per_byte_ns: u64,
    /// Fixed cost per diff created (allocation + header) (ns).
    pub diff_create_fixed_ns: u64,
    /// Fixed cost per diff applied (lookup + dispatch) (ns).
    pub diff_apply_fixed_ns: u64,
    /// Server-side work to prepare a full-page reply (ns).
    pub page_prep_ns: u64,
    /// Per-write-notice processing at barrier receipt (ns).
    pub write_notice_ns: u64,
    /// Barrier master per-arrival processing (ns).
    pub barrier_master_per_proc_ns: u64,
    /// Per-process barrier departure bookkeeping (ns).
    pub barrier_local_ns: u64,
    /// Cost to insert one out-of-order update into lmw-u's pending-update
    /// store (ns). The paper attributes lmw-u's Barnes/swm pathology to
    /// "the data structures used to store out-of-order updates".
    pub update_store_insert_ns: u64,
    /// Cost per stored update scanned/applied when a fault consults the
    /// pending-update store (ns).
    pub update_store_lookup_ns: u64,
    /// Additional per-insert cost for every update already resident in the
    /// store (ns). Under dynamic sharing, stale copyset members keep
    /// receiving updates for pages they no longer touch, the store grows
    /// without bound, and every insert slows down — the paper's Barnes/swm
    /// lmw-u pathology ("an artifact of the data structures used to store
    /// out-of-order updates").
    pub update_store_per_pending_ns: u64,
    /// One nominal floating-point operation of application work (ns).
    /// Applications charge minimal per-point flop counts, so this constant
    /// absorbs the full instruction and memory-hierarchy cost per flop on
    /// the 66 MHz POWER2: 200 ns/flop == 5 Mflop/s sustained, calibrated so
    /// the measured speedup shapes match the paper's Figure 2.
    pub flop_ns: u64,
    /// Per-element cost of a native (barrier-piggybacked) reduction (ns).
    pub reduction_combine_ns: u64,
    /// Garbage-collection cost per discarded diff in homeless protocols (ns).
    pub gc_per_diff_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // 25+30+25 = 80 µs one way => 160 µs round trip (paper).
            send_overhead_ns: 25_000,
            recv_overhead_ns: 25_000,
            wire_latency_ns: 30_000,
            // 40 MB/s sustained on an HPS link (paper).
            per_byte_ns: 25,
            copy_per_byte_ns: 14,
            segv_ns: 128_000,
            mprotect_ns: 12_000,
            // Composition of a remote 8 KB page fault with the values above:
            //   segv 128 + req one-way 80 + server prep 100 + reply one-way
            //   (80 + wire 204.8 + endpoint copies 229.4) + validate mprotect
            //   12 = 834.2 µs; fixed handler overhead brings it to 939 µs.
            page_fault_fixed_ns: 104_800,
            // ~70 MB/s memcpy / word-compare on a 66 MHz-era memory
            // system: a twin of an 8 KB page costs ~115 µs — which is why
            // the paper's bar-s, whose eagerly created twins are "pure
            // overhead if the write did not happen", gains so little over
            // bar-u despite eliminating every segv.
            twin_copy_per_byte_ns: 14,
            diff_scan_per_byte_ns: 12,
            diff_apply_per_byte_ns: 14,
            diff_create_fixed_ns: 10_000,
            diff_apply_fixed_ns: 8_000,
            page_prep_ns: 100_000,
            write_notice_ns: 1_000,
            barrier_master_per_proc_ns: 15_000,
            barrier_local_ns: 10_000,
            update_store_insert_ns: 25_000,
            update_store_lookup_ns: 12_000,
            update_store_per_pending_ns: 400,
            flop_ns: 200,
            reduction_combine_ns: 2_000,
            gc_per_diff_ns: 5_000,
        }
    }
}

impl CostModel {
    /// A hypothetical well-tuned modern machine: microsecond-scale
    /// networking, nanosecond-scale VM primitives, gigaflop cores. Used by
    /// the `sweep` ablation to test the paper's §5.2 conjecture that
    /// "eliminating interrupts and kernel traps will always improve
    /// performance even if operating system support is tuned for DSM-like
    /// consistency actions."
    pub fn modern() -> CostModel {
        CostModel {
            send_overhead_ns: 700,
            recv_overhead_ns: 700,
            wire_latency_ns: 1_100, // 2.5 µs one-way, 5 µs RPC
            per_byte_ns: 0,         // >10 GbE: latency dominates at 8 KB
            copy_per_byte_ns: 0,    // zero-copy NICs
            segv_ns: 3_500,         // modern signal delivery
            mprotect_ns: 450,       // modern mprotect + TLB shootdown
            page_fault_fixed_ns: 2_000,
            twin_copy_per_byte_ns: 0, // ~10 GB/s memcpy: < 1 µs per page
            diff_scan_per_byte_ns: 0,
            diff_apply_per_byte_ns: 0,
            diff_create_fixed_ns: 1_500,
            diff_apply_fixed_ns: 800,
            page_prep_ns: 1_000,
            write_notice_ns: 40,
            barrier_master_per_proc_ns: 500,
            barrier_local_ns: 300,
            update_store_insert_ns: 300,
            update_store_lookup_ns: 150,
            update_store_per_pending_ns: 5,
            flop_ns: 1, // ~1 Gflop/s sustained per core
            reduction_combine_ns: 50,
            gc_per_diff_ns: 200,
        }
    }

    /// One-way cost of a message with `payload` bytes, split into the three
    /// legs the simulation charges separately: `(sender, wire, receiver)`.
    ///
    /// The sender is charged `sender`, the receiver's handler is charged
    /// `receiver`, and the requester of a round trip waits for the sum of
    /// all legs.
    pub fn msg_legs(&self, payload: usize) -> (Time, Time, Time) {
        let copy = self.copy_per_byte_ns * payload as u64;
        (
            Time::from_ns(self.send_overhead_ns + copy),
            Time::from_ns(self.wire_latency_ns + self.per_byte_ns * payload as u64),
            Time::from_ns(self.recv_overhead_ns + copy),
        )
    }

    /// Total one-way transit time of a message with `payload` bytes.
    pub fn one_way(&self, payload: usize) -> Time {
        let (s, w, r) = self.msg_legs(payload);
        s + w + r
    }

    /// Round-trip time of a small request plus a reply carrying
    /// `reply_payload` bytes (the paper's "simple RPC" is
    /// `rpc_round_trip(0) == 160 µs`).
    pub fn rpc_round_trip(&self, reply_payload: usize) -> Time {
        self.one_way(0) + self.one_way(reply_payload)
    }

    /// Creating a twin of a `page_size`-byte page.
    pub fn twin_create(&self, page_size: usize) -> Time {
        Time::from_ns(self.twin_copy_per_byte_ns * page_size as u64)
    }

    /// Creating a diff: full-page comparison scan plus fixed overhead.
    pub fn diff_create(&self, page_size: usize) -> Time {
        Time::from_ns(self.diff_create_fixed_ns + self.diff_scan_per_byte_ns * page_size as u64)
    }

    /// Applying a diff whose runs total `diff_bytes` bytes.
    pub fn diff_apply(&self, diff_bytes: usize) -> Time {
        Time::from_ns(self.diff_apply_fixed_ns + self.diff_apply_per_byte_ns * diff_bytes as u64)
    }

    /// `n` flops of application work.
    pub fn flops(&self, n: u64) -> Time {
        Time::from_ns(self.flop_ns * n)
    }

    /// The total requester-visible cost of a full remote page fault for a
    /// `page_size`-byte page: segv + request + server prep + reply + fixed
    /// handler overhead + validating `mprotect`. With the default model and
    /// an 8 KB page this is the paper's 939 µs.
    pub fn remote_page_fault(&self, page_size: usize) -> Time {
        Time::from_ns(self.segv_ns)
            + self.one_way(0)
            + Time::from_ns(self.page_prep_ns)
            + self.one_way(page_size)
            + Time::from_ns(self.page_fault_fixed_ns)
            + Time::from_ns(self.mprotect_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rpc_matches_paper() {
        let c = CostModel::default();
        assert_eq!(c.rpc_round_trip(0), Time::from_us(160));
    }

    #[test]
    fn default_remote_fault_matches_paper() {
        let c = CostModel::default();
        let t = c.remote_page_fault(8192);
        // Paper: 939 µs. Allow sub-µs rounding slack from composition.
        let us = t.as_us_f64();
        assert!(
            (us - 939.0).abs() < 1.0,
            "remote fault = {us} µs, expected ≈939"
        );
    }

    #[test]
    fn bandwidth_is_40_mb_per_s() {
        let c = CostModel::default();
        // 25 ns per byte == 40 MB/s.
        let (_, wire, _) = c.msg_legs(1_000_000);
        let payload_ns = wire.as_ns() - c.wire_latency_ns;
        let mb_per_s = 1e9 / payload_ns as f64; // bytes/ns -> MB/s for 1 MB
        assert!((mb_per_s - 40.0).abs() < 0.1, "bandwidth {mb_per_s} MB/s");
    }

    #[test]
    fn msg_legs_sum_to_one_way() {
        let c = CostModel::default();
        let (s, w, r) = c.msg_legs(123);
        assert_eq!(s + w + r, c.one_way(123));
    }

    #[test]
    fn larger_payload_costs_more() {
        let c = CostModel::default();
        assert!(c.one_way(8192) > c.one_way(0));
        assert!(c.diff_apply(4096) > c.diff_apply(64));
        assert!(c.diff_create(8192) > c.diff_create(4096));
    }

    #[test]
    fn flops_scale_linearly() {
        let c = CostModel::default();
        assert_eq!(c.flops(0), Time::ZERO);
        assert_eq!(c.flops(20), Time::from_ns(20 * c.flop_ns));
    }

    #[test]
    fn twin_cost_proportional_to_page() {
        let c = CostModel::default();
        assert_eq!(c.twin_create(8192).as_ns(), 8192 * c.twin_copy_per_byte_ns);
    }
}
