//! The location-dependent `mprotect` degradation model.
//!
//! The paper (§3.2, §4) observes that AIX virtual-memory primitives are
//! *location dependent*: the 12 µs best-case `mprotect` "occasionally
//! increas\[es\] the cost of page protection changes by an order of magnitude",
//! and Figure 3 shows that for the applications with large shared segments
//! and many per-epoch protection changes (fft, shallow, swm) the OS bucket
//! dominates — "an order of magnitude more time than implied by the mprotect
//! time given in Section 3.2".
//!
//! We model this as a multiplier on the base `mprotect` cost that grows with
//! how hard the process is driving the VM system: the number of protection
//! changes it has issued in the current barrier epoch, scaled by the size of
//! the shared segment. Small, orderly consumers stay near 1×; large
//! unpredictable ones saturate at `max_multiplier` (default 40×, i.e. ~0.5 ms
//! per call — consistent with the aggregate OS time in Fig. 3).

use crate::time::Time;

/// Parameters of the stress multiplier.
#[derive(Clone, Debug)]
pub struct StressModel {
    /// If false, `mprotect` always costs its base value (ablation switch).
    pub enabled: bool,
    /// Multiplier ceiling; default 150× of the 12 µs base ≈ 1.8 ms — the
    /// aggregate OS components of the paper's Figure 3 imply sustained
    /// protection-change costs two orders of magnitude above the 12 µs
    /// best case for the large-segment applications.
    pub max_multiplier: f64,
    /// Protection ops × segment-pages product at which the multiplier
    /// reaches halfway to the ceiling.
    pub half_saturation: f64,
    /// Segment size (pages) below which no degradation occurs at all —
    /// the paper ties the degradation to "large address spaces" manipulated
    /// in unpredictable order; ~4 MB of 8 KB pages marks the cliff.
    pub min_segment_pages: usize,
}

impl Default for StressModel {
    fn default() -> Self {
        StressModel {
            enabled: true,
            max_multiplier: 150.0,
            half_saturation: 16_384.0,
            min_segment_pages: 600,
        }
    }
}

impl StressModel {
    /// A disabled model: every `mprotect` costs exactly the base value.
    pub fn disabled() -> Self {
        StressModel {
            enabled: false,
            ..StressModel::default()
        }
    }

    /// Multiplier for the *next* `mprotect`, given the number of protection
    /// changes this process has already issued in the current epoch and the
    /// shared segment size in pages.
    ///
    /// Monotone in both arguments; deterministic.
    pub fn multiplier(&self, ops_this_epoch: u32, segment_pages: usize) -> f64 {
        if !self.enabled || segment_pages < self.min_segment_pages {
            return 1.0;
        }
        let load = ops_this_epoch as f64 * segment_pages as f64;
        // Smooth saturating curve: 1 at load 0, ceiling as load -> inf,
        // halfway at `half_saturation`.
        let x = load / (load + self.half_saturation);
        1.0 + (self.max_multiplier - 1.0) * x
    }

    /// Cost of one `mprotect` call under stress.
    pub fn mprotect_cost(&self, base: Time, ops_this_epoch: u32, segment_pages: usize) -> Time {
        base.scale_f64(self.multiplier(ops_this_epoch, segment_pages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_identity() {
        let s = StressModel::disabled();
        assert_eq!(s.multiplier(10_000, 100_000), 1.0);
        assert_eq!(
            s.mprotect_cost(Time::from_us(12), 10_000, 100_000),
            Time::from_us(12)
        );
    }

    #[test]
    fn small_segments_never_degrade() {
        let s = StressModel::default();
        assert_eq!(s.multiplier(1_000_000, 8), 1.0);
    }

    #[test]
    fn multiplier_is_monotone_in_ops() {
        let s = StressModel::default();
        let mut last = 0.0;
        for ops in [0u32, 1, 10, 100, 1000, 10_000] {
            let m = s.multiplier(ops, 1024);
            assert!(m >= last, "multiplier must be monotone");
            last = m;
        }
    }

    #[test]
    fn multiplier_is_monotone_in_segment_size() {
        let s = StressModel::default();
        let m_small = s.multiplier(100, 128);
        let m_big = s.multiplier(100, 4096);
        assert!(m_big > m_small);
    }

    #[test]
    fn multiplier_bounded_by_ceiling() {
        let s = StressModel::default();
        let m = s.multiplier(u32::MAX, usize::MAX >> 16);
        assert!(m <= s.max_multiplier + 1e-9);
        assert!(m > s.max_multiplier * 0.99, "should approach ceiling");
    }

    #[test]
    fn zero_ops_costs_base() {
        let s = StressModel::default();
        assert_eq!(
            s.mprotect_cost(Time::from_us(12), 0, 1024),
            Time::from_us(12)
        );
    }

    #[test]
    fn order_of_magnitude_reachable() {
        // The paper's "order of magnitude" degradation must be reachable for
        // a realistically sized application (e.g. fft/swm: a few hundred
        // protection ops per epoch over a multi-MB segment).
        let s = StressModel::default();
        let m = s.multiplier(200, 1024);
        assert!(m >= 10.0, "got only {m}x for a heavy workload");
    }
}
