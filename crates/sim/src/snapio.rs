//! Snapshot byte primitives.
//!
//! The snapshot format (see `dsm-snap` and DESIGN.md §16) is a flat
//! little-endian byte stream; every layer encodes its own state with these
//! two types so the framing conventions live in exactly one place:
//!
//! * integers are fixed-width little-endian (`u8`/`u16`/`u32`/`u64`);
//! * `f64` is encoded as its IEEE-754 bit pattern (`to_bits`), so restored
//!   values are bit-identical, NaN payloads included;
//! * variable-length data is a `u64` count followed by the elements;
//! * map/set content must be written in sorted key order — the simulator's
//!   `FastMap`/`FastSet` iterate in unspecified order, and the golden-format
//!   test diffs snapshots byte-for-byte.
//!
//! The reader panics on truncated or malformed input. Snapshots are
//! produced and consumed by the same binary within one process (explore
//! checkpoints) or committed by the golden test; corruption is a bug, not
//! an input-validation case.

/// Append-only snapshot encoder.
#[derive(Default, Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` is always encoded as `u64` so 32- and 64-bit hosts agree.
    #[inline]
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    #[inline]
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    #[inline]
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Raw bytes with no length prefix (the caller frames them).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Patch a previously written `u64` at byte offset `at` (section length
    /// back-patching).
    pub fn patch_u64(&mut self, at: usize, v: u64) {
        self.buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }
}

/// Sequential snapshot decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.remaining() >= n,
            "snapshot truncated: need {n} bytes at offset {}, have {}",
            self.pos,
            self.remaining()
        );
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    #[inline]
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    #[inline]
    pub fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    #[inline]
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    #[inline]
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    #[inline]
    pub fn usize(&mut self) -> usize {
        usize::try_from(self.u64()).expect("snapshot length overflows usize")
    }

    #[inline]
    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    #[inline]
    pub fn bool(&mut self) -> bool {
        match self.u8() {
            0 => false,
            1 => true,
            b => panic!("snapshot corrupt: bool byte {b}"),
        }
    }

    /// Length-prefixed raw bytes (see [`SnapWriter::bytes`]).
    pub fn bytes(&mut self) -> &'a [u8] {
        let n = self.usize();
        self.take(n)
    }

    /// Raw bytes with no length prefix.
    pub fn raw(&mut self, n: usize) -> &'a [u8] {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.usize(12345);
        w.f64(-0.125);
        w.bool(true);
        w.bool(false);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8(), 7);
        assert_eq!(r.u16(), 0xBEEF);
        assert_eq!(r.u32(), 0xDEAD_BEEF);
        assert_eq!(r.u64(), u64::MAX - 3);
        assert_eq!(r.usize(), 12345);
        assert_eq!(r.f64(), -0.125);
        assert!(r.bool());
        assert!(!r.bool());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn f64_is_bit_exact() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        w.f64(nan);
        w.f64(-0.0);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.f64().to_bits(), nan.to_bits());
        assert_eq!(r.f64().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn byte_slices_round_trip() {
        let mut w = SnapWriter::new();
        w.bytes(b"hello");
        w.bytes(b"");
        w.raw(b"xyz");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.bytes(), b"hello");
        assert_eq!(r.bytes(), b"");
        assert_eq!(r.raw(3), b"xyz");
    }

    #[test]
    fn patching_back_fills_lengths() {
        let mut w = SnapWriter::new();
        let at = w.len();
        w.u64(0);
        w.raw(b"payload");
        w.patch_u64(at, 7);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u64(), 7);
        assert_eq!(r.raw(7), b"payload");
    }

    #[test]
    #[should_panic(expected = "snapshot truncated")]
    fn truncation_panics() {
        let mut r = SnapReader::new(&[1, 2, 3]);
        let _ = r.u64();
    }

    #[test]
    #[should_panic(expected = "bool byte")]
    fn bad_bool_panics() {
        let mut r = SnapReader::new(&[9]);
        let _ = r.bool();
    }
}
