//! Deterministic random number helpers.
//!
//! Every stochastic choice in the simulation (Barnes' per-iteration work
//! perturbation, optional flush-loss injection, test data generation) draws
//! from a [`DetRng`] seeded from the run configuration, so identical
//! configurations produce bit-identical runs.
//!
//! The generator is a self-contained xoshiro256++ (public domain algorithm
//! by Blackman & Vigna) seeded through SplitMix64. Owning the implementation
//! keeps runs reproducible across dependency upgrades and lets the state be
//! cloned for stream derivation.

/// A seeded, clonable RNG with convenience methods used across the workspace.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// The raw generator state, for snapshot/restore. The four words are
    /// opaque; only [`DetRng::from_state`] should consume them.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator mid-stream from a [`DetRng::state`] capture. The
    /// restored generator continues the exact output sequence.
    pub fn from_state(s: [u64; 4]) -> DetRng {
        DetRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent stream for subsystem `stream` — e.g. one per
    /// process — without correlating draws between streams or perturbing
    /// the parent's own sequence.
    #[must_use]
    pub fn derive(&self, stream: u64) -> DetRng {
        let mut mix = stream ^ 0xA076_1D64_78BD_642F;
        let salt = splitmix64(&mut mix);
        DetRng::new(self.s[0] ^ self.s[2].rotate_left(13) ^ salt)
    }

    /// Uniform in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng::below(0)");
        // Debiased multiply-shift (Lemire). The rejection loop terminates
        // with overwhelming probability per iteration.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_deterministic() {
        let parent1 = DetRng::new(7);
        let parent2 = DetRng::new(7);
        let mut c1 = parent1.derive(3);
        let mut c2 = parent2.derive(3);
        for _ in 0..50 {
            assert_eq!(c1.below(1000), c2.below(1000));
        }
    }

    #[test]
    fn derive_does_not_perturb_parent() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        let _ = b.derive(1);
        let _ = b.derive(2);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_by_stream_id() {
        let parent = DetRng::new(7);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(2);
        let v1: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = DetRng::new(13);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of [0,5) should appear");
    }

    #[test]
    #[should_panic(expected = "DetRng::below(0)")]
    fn below_zero_panics() {
        DetRng::new(1).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::new(21);
        for _ in 0..100 {
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(11);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // And with this seed it should actually move something.
        assert_ne!(xs, (0..100).collect::<Vec<u32>>());
    }
}
