//! Transport backend selection and the one-sided (RDMA-style) cost model.
//!
//! The paper's 1998 cost model assumes interrupt-driven two-sided
//! messaging: every remote fetch is a request/reply pair, and the server
//! burns CPU in a SIGIO handler preparing the reply. Modern interconnects
//! invert this — a one-sided remote read completes without any receiver
//! involvement, at single-digit-microsecond latency. [`TransportKind`]
//! names the two wire personalities `dsm-net` implements behind its
//! `Transport` trait; [`RdmaParams`] carries the one-sided
//! latency/bandwidth/setup parameterization, defaulted to a conservative
//! early-RDMA NIC so the *host* costs (segv, mprotect, diff creation)
//! stay at the paper's 1998 values while the *wire* jumps ahead two
//! decades. That asymmetry is the experiment: protocols that spend host
//! CPU to avoid wire traffic (the update family) lose their edge when
//! the wire is nearly free.

use crate::time::Time;

/// Which wire personality carries protocol traffic.
///
/// Synchronization traffic (barrier arrivals/releases) is always carried
/// by the reliable two-sided wire — RDMA NICs do not interrupt the
/// remote CPU, so a barrier still needs an active receiver. The kind
/// only governs data traffic: page/diff fetches and update flushes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TransportKind {
    /// The lossy UDP-style wire: two-sided send/receive with
    /// acknowledgements, retransmission timers, and FIFO channels.
    #[default]
    TwoSided,
    /// RDMA-style one-sided verbs: remote read/write with no receiver
    /// involvement, reliable-connected semantics (no loss, duplication,
    /// or reordering below the verbs), posted-op completion timers.
    OneSided,
}

impl TransportKind {
    /// Stable lowercase name (CLI flags, reports, config digests).
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::TwoSided => "two-sided",
            TransportKind::OneSided => "one-sided",
        }
    }

    /// Inverse of [`TransportKind::label`].
    pub fn from_label(s: &str) -> Option<TransportKind> {
        match s {
            "two-sided" => Some(TransportKind::TwoSided),
            "one-sided" => Some(TransportKind::OneSided),
            _ => None,
        }
    }

    /// All kinds, in label order.
    pub const ALL: [TransportKind; 2] = [TransportKind::TwoSided, TransportKind::OneSided];
}

/// Cost constants for the one-sided backend.
///
/// Defaults model a conservative first-generation RDMA interconnect
/// (VIA/early InfiniBand class): ~1.5 µs one-way latency, ~1 GB/s
/// bandwidth, sub-microsecond posting, and a one-time queue-pair setup
/// per directed endpoint pair. Deliberately *not* a 2020s NIC — the
/// point is the 1998-host/modern-wire asymmetry, and even this modest
/// wire collapses the paper's 939 µs remote page fault to ~260 µs.
#[derive(Clone, Debug)]
pub struct RdmaParams {
    /// One-time queue-pair establishment per directed `(src, dst)` pair
    /// (ns). Charged to the initiator on its first verb to that peer.
    pub qp_setup_ns: u64,
    /// Initiator CPU cost to post one work request (ns).
    pub post_overhead_ns: u64,
    /// One-way wire latency of a verb (ns). A remote read pays it twice:
    /// the request reaches the remote NIC, the data comes back.
    pub latency_ns: u64,
    /// Per-payload-byte transfer cost (ns); 1 ns/B == 1 GB/s.
    pub per_byte_ns: u64,
    /// Initiator CPU cost to poll the completion queue entry (ns).
    pub poll_ns: u64,
}

impl Default for RdmaParams {
    fn default() -> Self {
        RdmaParams {
            qp_setup_ns: 40_000,
            post_overhead_ns: 600,
            latency_ns: 1_500,
            per_byte_ns: 1,
            poll_ns: 300,
        }
    }
}

impl RdmaParams {
    /// Initiator CPU charged per verb: post the work request, later poll
    /// its completion. The remote CPU cost of any verb is zero — that is
    /// the defining property of one-sided transport.
    pub fn initiator_cpu(&self) -> Time {
        Time::from_ns(self.post_overhead_ns + self.poll_ns)
    }

    /// Wire time of a one-sided *read* returning `payload` bytes: the
    /// request reaches the remote NIC, the payload streams back.
    pub fn read_wire(&self, payload: usize) -> Time {
        Time::from_ns(2 * self.latency_ns + self.per_byte_ns * payload as u64)
    }

    /// Wire time of a one-sided *write* carrying `payload` bytes: one
    /// latency out plus the payload stream (the initiator learns of
    /// completion from its local NIC; no return trip gates the data).
    pub fn write_wire(&self, payload: usize) -> Time {
        Time::from_ns(self.latency_ns + self.per_byte_ns * payload as u64)
    }

    /// Validate invariants. Returns human-readable violations.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.latency_ns == 0 {
            errs.push("rdma latency_ns must be > 0".into());
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip() {
        for k in TransportKind::ALL {
            assert_eq!(TransportKind::from_label(k.label()), Some(k));
        }
        assert_eq!(TransportKind::from_label("pigeon"), None);
        assert_eq!(TransportKind::default(), TransportKind::TwoSided);
    }

    #[test]
    fn read_pays_round_trip_latency_write_pays_one() {
        let p = RdmaParams::default();
        assert_eq!(
            p.read_wire(0).as_ns() - p.write_wire(0).as_ns(),
            p.latency_ns
        );
        // Bandwidth term is linear in the payload for both verbs.
        assert_eq!(
            p.read_wire(8192).as_ns() - p.read_wire(0).as_ns(),
            8192 * p.per_byte_ns
        );
        assert_eq!(
            p.write_wire(8192).as_ns() - p.write_wire(0).as_ns(),
            8192 * p.per_byte_ns
        );
    }

    #[test]
    fn default_read_is_far_cheaper_than_paper_rpc() {
        // The paper's simple RPC is 160 µs; a one-sided 8 KB read under
        // the default parameterization is ~11 µs of wire time.
        let p = RdmaParams::default();
        assert!(p.read_wire(8192) < Time::from_us(20));
        assert!(p.validate().is_empty());
    }
}
