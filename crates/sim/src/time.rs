//! Virtual time.
//!
//! All simulation time is kept in integer nanoseconds. Integer arithmetic
//! keeps runs exactly reproducible regardless of accumulation order, which
//! floating-point times would not.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Time` is used both for instants (a process clock reading) and durations
/// (a cost charged by the cost model); the arithmetic is identical and the
/// simulation never needs a wall-clock epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Nanoseconds since the virtual epoch.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in microseconds (floating point, for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds (floating point, for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds (floating point, for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    #[inline]
    #[must_use]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    #[inline]
    #[must_use]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }

    /// Scale a duration by an integer factor.
    #[inline]
    #[must_use]
    pub fn scale(self, factor: u64) -> Time {
        Time(self.0 * factor)
    }

    /// Scale a duration by a floating factor, rounding to the nearest ns.
    ///
    /// Used by the stress model; the rounding keeps the result integral so
    /// determinism is preserved (the factor itself is a pure function of
    /// integer state).
    #[inline]
    #[must_use]
    pub fn scale_f64(self, factor: f64) -> Time {
        debug_assert!(factor >= 0.0, "negative time scale");
        Time((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "time underflow: {self:?} - {rhs:?}");
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        debug_assert!(self.0 >= rhs.0, "time underflow");
        self.0 -= rhs.0;
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Time::from_us(160).as_ns(), 160_000);
        assert_eq!(Time::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(Time::from_ns(7).as_ns(), 7);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_us(100);
        let b = Time::from_us(60);
        assert_eq!(a + b, Time::from_us(160));
        assert_eq!(a - b, Time::from_us(40));
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_us(160));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Time::from_us(1).saturating_sub(Time::from_us(2)),
            Time::ZERO
        );
        assert_eq!(
            Time::from_us(5).saturating_sub(Time::from_us(2)),
            Time::from_us(3)
        );
    }

    #[test]
    fn min_max() {
        let a = Time::from_us(3);
        let b = Time::from_us(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn scaling() {
        assert_eq!(Time::from_us(12).scale(10), Time::from_us(120));
        assert_eq!(Time::from_us(10).scale_f64(2.5), Time::from_us(25));
        assert_eq!(Time::from_ns(3).scale_f64(1.0), Time::from_ns(3));
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_us(1), Time::from_us(2), Time::from_us(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_us(6));
    }

    #[test]
    fn conversions_to_float() {
        let t = Time::from_us(1500);
        assert!((t.as_ms_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_us_f64() - 1500.0).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Time::from_ns(12)), "12ns");
        assert_eq!(format!("{}", Time::from_us(12)), "12.000us");
        assert_eq!(format!("{}", Time::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", Time::from_ms(1200)), "1.200s");
    }

    #[test]
    #[should_panic(expected = "time underflow")]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        let _ = Time::from_us(1) - Time::from_us(2);
    }
}
