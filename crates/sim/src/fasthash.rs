//! A fast, deterministic `BuildHasher` for the simulator's hot maps.
//!
//! The checker, the LRC protocol state, and the explorer's visited set all
//! key maps by small simulator-produced integers (page numbers, word
//! indices, state hashes) and hit them on hot paths — per simulated access
//! in the checker's case — so the std SipHash (keyed, DoS-resistant) is
//! pure overhead: the keys are never attacker data. This hasher folds each
//! word with a single odd-constant multiply and finishes with an xor-shift
//! mix (the splitmix64 finalizer), which is enough to spread such keys
//! across HashMap buckets.
//!
//! Determinism matters too: the default hasher is randomly seeded per
//! process, and while no map iterates in a way that reaches the output
//! today (anything folded into results is sorted first), a fixed hasher
//! removes the only source of nondeterminism in the stack by construction.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-fold hasher for small integer keys.
#[derive(Default, Clone)]
pub struct IntHasher(u64);

/// Odd constant (from splitmix64's increment) — any odd multiplier works,
/// this one has a good bit-avalanche record.
const M: u64 = 0x9e37_79b9_7f4a_7c15;

impl IntHasher {
    #[inline]
    fn fold(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(M);
    }
}

impl Hasher for IntHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (struct keys, strings): fold 8 bytes per multiply.
        let mut it = bytes.chunks_exact(8);
        for c in it.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = it.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(tail) | 1 << 63);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: the multiply fold alone leaves low bits
        // weak, and HashMap uses the low bits for bucket selection.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Drop-in `HashMap`/`HashSet` aliases using [`IntHasher`].
pub type FastBuild = BuildHasherDefault<IntHasher>;
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;
pub type FastSet<K> = std::collections::HashSet<K, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m1: FastMap<u32, u32> = FastMap::default();
        let mut m2: FastMap<u32, u32> = FastMap::default();
        for k in 0..1000 {
            m1.insert(k, k * 3);
            m2.insert(k, k * 3);
        }
        assert_eq!(m1, m2);
        assert_eq!(m1.get(&17), Some(&51));
    }

    #[test]
    fn sequential_keys_spread() {
        use std::hash::BuildHasher;
        let b = FastBuild::default();
        // Low 6 bits (a 64-bucket table) must not collapse for the keys the
        // checker actually uses: consecutive page numbers.
        let mut buckets = std::collections::HashSet::new();
        for k in 0u32..64 {
            buckets.insert(b.hash_one(k) & 63);
        }
        assert!(
            buckets.len() > 32,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn generic_write_handles_tails() {
        use std::hash::BuildHasher;
        let b = FastBuild::default();
        assert_ne!(b.hash_one([1u8, 2, 3]), b.hash_one([1u8, 2, 3, 0]));
        assert_ne!(b.hash_one("abc"), b.hash_one("abd"));
    }
}
