//! The four-way execution time breakdown of the paper's Figure 3.
//!
//! Every nanosecond a simulated process's clock advances is attributed to
//! exactly one of four categories:
//!
//! * **app** — useful application computation,
//! * **os** — operating-system traps: `mprotect`, segv delivery, and the
//!   send/recv system-call overhead of the process's *own* communication,
//! * **sigio** — time spent servicing *incoming* requests from other
//!   processes (the paper's CVM delivers these via `SIGIO`),
//! * **wait** — time stalled on remote operations: mid-epoch fetch round
//!   trips and barrier release waiting.

use core::fmt;
use core::ops::{Add, AddAssign};

use crate::time::Time;

/// The attribution category for a span of virtual time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Category {
    /// Useful application computation.
    App,
    /// OS traps: `mprotect`, segv delivery, send/recv syscall overhead.
    Os,
    /// Handling incoming requests from other processes.
    Sigio,
    /// Stalled on remote fetches or barrier releases.
    Wait,
}

impl Category {
    /// All categories, in the order the paper's Figure 3 stacks them.
    pub const ALL: [Category; 4] = [Category::Sigio, Category::Wait, Category::Os, Category::App];

    /// Short lowercase label as used in the paper's figure legend.
    pub fn label(self) -> &'static str {
        match self {
            Category::App => "app",
            Category::Os => "os",
            Category::Sigio => "sigio",
            Category::Wait => "wait",
        }
    }
}

/// Accumulated time per category for one process (or aggregated over all).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TimeBreakdown {
    /// Useful application computation.
    pub app: Time,
    /// OS trap overhead.
    pub os: Time,
    /// Incoming-request service time.
    pub sigio: Time,
    /// Remote-operation and barrier wait time.
    pub wait: Time,
    /// Annex, not a fifth category: of the time already attributed to the
    /// four buckets above, how much was induced by wire retransmissions
    /// (backoff waits on lossy channels). Excluded from [`Self::total`] and
    /// the figure output; it separates goodput from retransmit overhead
    /// without changing the paper's four-way split.
    pub retrans: Time,
}

impl TimeBreakdown {
    /// A breakdown with all buckets empty.
    pub const ZERO: TimeBreakdown = TimeBreakdown {
        app: Time::ZERO,
        os: Time::ZERO,
        sigio: Time::ZERO,
        wait: Time::ZERO,
        retrans: Time::ZERO,
    };

    /// Note that `dt` of already-charged time was retransmission overhead.
    /// Pure annotation: the clock does not move and no bucket changes.
    #[inline]
    pub fn note_retrans(&mut self, dt: Time) {
        self.retrans += dt;
    }

    /// Add `dt` to the bucket for `cat`.
    #[inline]
    pub fn charge(&mut self, cat: Category, dt: Time) {
        match cat {
            Category::App => self.app += dt,
            Category::Os => self.os += dt,
            Category::Sigio => self.sigio += dt,
            Category::Wait => self.wait += dt,
        }
    }

    /// Read the bucket for `cat`.
    #[inline]
    pub fn get(&self, cat: Category) -> Time {
        match cat {
            Category::App => self.app,
            Category::Os => self.os,
            Category::Sigio => self.sigio,
            Category::Wait => self.wait,
        }
    }

    /// Sum of all buckets; equals the owning clock's total elapsed time.
    #[inline]
    pub fn total(&self) -> Time {
        self.app + self.os + self.sigio + self.wait
    }

    /// Fraction (0..=1) of total time in `cat`; 0 if the total is zero.
    pub fn fraction(&self, cat: Category) -> f64 {
        let total = self.total().as_ns();
        if total == 0 {
            0.0
        } else {
            self.get(cat).as_ns() as f64 / total as f64
        }
    }
}

impl Add for TimeBreakdown {
    type Output = TimeBreakdown;
    fn add(self, rhs: TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            app: self.app + rhs.app,
            os: self.os + rhs.os,
            sigio: self.sigio + rhs.sigio,
            wait: self.wait + rhs.wait,
            retrans: self.retrans + rhs.retrans,
        }
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "app {:.1}% | os {:.1}% | sigio {:.1}% | wait {:.1}%",
            100.0 * self.fraction(Category::App),
            100.0 * self.fraction(Category::Os),
            100.0 * self.fraction(Category::Sigio),
            100.0 * self.fraction(Category::Wait),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_get_each_category() {
        let mut b = TimeBreakdown::ZERO;
        for (i, cat) in Category::ALL.into_iter().enumerate() {
            b.charge(cat, Time::from_us((i + 1) as u64));
            assert_eq!(b.get(cat), Time::from_us((i + 1) as u64));
        }
        assert_eq!(b.total(), Time::from_us(1 + 2 + 3 + 4));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = TimeBreakdown::ZERO;
        b.charge(Category::App, Time::from_us(50));
        b.charge(Category::Os, Time::from_us(25));
        b.charge(Category::Wait, Time::from_us(25));
        let sum: f64 = Category::ALL.iter().map(|&c| b.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_has_zero_fractions() {
        let b = TimeBreakdown::ZERO;
        for cat in Category::ALL {
            assert_eq!(b.fraction(cat), 0.0);
        }
    }

    #[test]
    fn addition_merges_buckets() {
        let mut a = TimeBreakdown::ZERO;
        a.charge(Category::App, Time::from_us(10));
        let mut b = TimeBreakdown::ZERO;
        b.charge(Category::App, Time::from_us(5));
        b.charge(Category::Sigio, Time::from_us(2));
        let c = a + b;
        assert_eq!(c.app, Time::from_us(15));
        assert_eq!(c.sigio, Time::from_us(2));
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn retrans_annex_stays_out_of_total_and_display() {
        let mut b = TimeBreakdown::ZERO;
        b.charge(Category::Wait, Time::from_us(100));
        b.note_retrans(Time::from_us(40));
        assert_eq!(
            b.total(),
            Time::from_us(100),
            "annex must not inflate total"
        );
        assert_eq!(b.retrans, Time::from_us(40));
        assert_eq!(
            format!("{b}"),
            "app 0.0% | os 0.0% | sigio 0.0% | wait 100.0%"
        );
        let sum = b + b;
        assert_eq!(sum.retrans, Time::from_us(80), "annex merges additively");
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Category::App.label(), "app");
        assert_eq!(Category::Os.label(), "os");
        assert_eq!(Category::Sigio.label(), "sigio");
        assert_eq!(Category::Wait.label(), "wait");
    }
}
