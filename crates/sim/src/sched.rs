//! The decision scheduler: every nondeterministic choice the virtual
//! cluster makes, behind one trait.
//!
//! The protocols above this crate contain exactly six kinds of
//! "environment" decisions:
//!
//! * **drop** — whether an unreliable flush message is lost in transit;
//! * **duplicate** — whether a delivered unreliable flush arrives twice;
//! * **arrival** — the order in which processes run their end-of-epoch
//!   consistency work (which is the queueing order of their in-flight
//!   flushes);
//! * **delivery** — the order in which one process consumes the one-way
//!   messages addressed to it at a barrier release;
//! * **completion** — the order in which posted one-sided operations
//!   retire at one initiator (the one-sided transport's analogue of
//!   delivery: no receiver exists to consume anything);
//! * **migration** — whether a pending home-migration decision executes at
//!   this barrier or is deferred to a later one.
//!
//! In addition the wire's reliability sublayer (see `dsm-net`) consults
//! [`Scheduler::wire_chance`] for fault-profile Bernoulli draws and reports
//! retransmission timer firings through [`Scheduler::observe_timer`].
//!
//! The default [`VirtualTimeScheduler`] resolves them exactly the way the
//! cluster always has: drops come from a [`DetRng`] Bernoulli draw and every
//! ordering choice takes the first (canonical) candidate, so a run under the
//! default scheduler is bit-identical — in virtual time, statistics, and
//! results — to the pre-scheduler code. A model checker (see the
//! `dsm-explore` crate) substitutes its own implementation to enumerate
//! bounded choice sequences instead.
//!
//! This crate knows nothing about pages or messages; candidates carry
//! opaque `u32` resource labels (the cluster uses page ids) whose only
//! meaning is that two candidates with disjoint label sets *commute*.

use std::cell::RefCell;
use std::rc::Rc;

use crate::rng::DetRng;

/// Which kind of decision a choice point resolves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChoiceKind {
    /// Drop/deliver for one unreliable flush.
    Drop,
    /// Pre-barrier processing order among processes.
    Arrival,
    /// Consumption order of queued one-way messages at one receiver.
    Delivery,
    /// Execute-now/defer for a pending home migration.
    Migration,
    /// Duplicate-in-flight for one delivered unreliable flush.
    Duplicate,
    /// Completion order of posted one-sided operations at one initiator
    /// (only emitted under the one-sided transport, where there is no
    /// receiver whose consumption order [`ChoiceKind::Delivery`] could
    /// model — the NIC retires posted ops, and an explorer may permute
    /// the retirement order the protocol observes).
    Completion,
}

impl ChoiceKind {
    /// Stable lowercase name (used by the trace format).
    pub fn label(self) -> &'static str {
        match self {
            ChoiceKind::Drop => "drop",
            ChoiceKind::Arrival => "arrival",
            ChoiceKind::Delivery => "delivery",
            ChoiceKind::Migration => "migration",
            ChoiceKind::Duplicate => "duplicate",
            ChoiceKind::Completion => "completion",
        }
    }

    /// Inverse of [`ChoiceKind::label`].
    pub fn from_label(s: &str) -> Option<ChoiceKind> {
        match s {
            "drop" => Some(ChoiceKind::Drop),
            "arrival" => Some(ChoiceKind::Arrival),
            "delivery" => Some(ChoiceKind::Delivery),
            "migration" => Some(ChoiceKind::Migration),
            "duplicate" => Some(ChoiceKind::Duplicate),
            "completion" => Some(ChoiceKind::Completion),
            _ => None,
        }
    }
}

/// One schedulable alternative at an ordering choice point.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Acting process (arriving pid for `Arrival`; the writer for
    /// `Delivery` entries).
    pub actor: u16,
    /// Conflict footprint: sorted, deduplicated resource labels (the
    /// cluster passes page ids). Two candidates with disjoint footprints
    /// commute — scheduling them in either order reaches the same state.
    pub footprint: Vec<u32>,
}

impl Candidate {
    /// True if the two footprints share a label (candidates conflict).
    pub fn conflicts_with(&self, other: &Candidate) -> bool {
        // Both sides are sorted: one merge walk.
        let (mut i, mut j) = (0, 0);
        while i < self.footprint.len() && j < other.footprint.len() {
            match self.footprint[i].cmp(&other.footprint[j]) {
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

/// Resolver for the cluster's environment decisions.
///
/// Implementations are consulted synchronously from inside the cluster and
/// must not re-enter it. `choose` returns an index into `cands`; it is only
/// called with two or more candidates.
pub trait Scheduler {
    /// True for schedule-enumerating implementations. The cluster caches
    /// this at installation and only pays for candidate construction (and
    /// state hashing) when it is set.
    fn exploring(&self) -> bool {
        false
    }

    /// Whether the unreliable flush `src → dst` is dropped. `prob` is the
    /// configured loss probability (the default implementation draws on
    /// it; an explorer enumerates instead).
    fn flush_drop(&mut self, src: usize, dst: usize, prob: f64) -> bool;

    /// One Bernoulli draw for a wire-level fault event (loss, duplication,
    /// slow-pathing) under a `FaultProfile`. The default scheduler draws on
    /// its stream; like [`DetRng::chance`], a `prob <= 0` call must consume
    /// no generator state — the zero-fault bit-identity guarantee depends
    /// on it. The base default returns `false` so scripted test schedulers
    /// see a faultless wire unless they opt in.
    fn wire_chance(&mut self, prob: f64) -> bool {
        let _ = prob;
        false
    }

    /// Whether a *delivered* unreliable flush `src → dst` is duplicated in
    /// flight. Defaults to a [`Scheduler::wire_chance`] draw; an explorer
    /// may enumerate it as a [`ChoiceKind::Duplicate`] choice point
    /// instead.
    fn flush_duplicate(&mut self, src: usize, dst: usize, prob: f64) -> bool {
        let _ = (src, dst);
        self.wire_chance(prob)
    }

    /// Observe one retransmission timer firing for a reliable message
    /// (`attempt` is the 1-based attempt the firing triggers). Purely a
    /// notification — timers are deterministic, not a choice point.
    fn observe_timer(&mut self, src: usize, dst: usize, attempt: u32) {
        let _ = (src, dst, attempt);
    }

    /// Pick the next candidate to schedule.
    fn choose(&mut self, kind: ChoiceKind, cands: &[Candidate]) -> usize {
        let _ = (kind, cands);
        0
    }

    /// Whether a ready home-migration decision is deferred past this
    /// barrier (`iter` is the ending iteration index).
    fn defer_migration(&mut self, iter: usize) -> bool {
        let _ = iter;
        false
    }

    /// Observe the cluster's structural state hash at the end of a
    /// barrier. Returning `false` abandons the execution (the cluster sets
    /// its pruned flag and returns early); the default continues.
    fn observe_barrier(&mut self, state_hash: u64) -> bool {
        let _ = state_hash;
        true
    }

    /// The scheduler's RNG stream state, if it owns one — snapshots must
    /// capture it so restored runs draw the same future sequence. `None`
    /// means the scheduler is stateless here (exploration schedulers keep
    /// their own state outside the cluster snapshot).
    fn rng_state(&self) -> Option<[u64; 4]> {
        None
    }

    /// Restore a stream captured by [`Scheduler::rng_state`]. No-op for
    /// schedulers that returned `None`.
    fn set_rng_state(&mut self, state: [u64; 4]) {
        let _ = state;
    }
}

/// Shared handle: the cluster and the network consult the same scheduler.
pub type SharedScheduler = Rc<RefCell<dyn Scheduler>>;

/// The default scheduler: the cluster's historical behaviour.
///
/// Drops draw from the owned [`DetRng`] stream exactly as the network used
/// to (a `prob <= 0` draw consumes no generator state), and every ordering
/// choice resolves to the canonical first candidate — which is what the
/// hard-coded loops did before the trait existed.
#[derive(Clone, Debug)]
pub struct VirtualTimeScheduler {
    rng: DetRng,
}

impl VirtualTimeScheduler {
    /// Wrap an RNG stream (the cluster derives one from the run seed).
    pub fn new(rng: DetRng) -> VirtualTimeScheduler {
        VirtualTimeScheduler { rng }
    }

    /// Convenience: seed a fresh stream.
    pub fn from_seed(seed: u64) -> VirtualTimeScheduler {
        VirtualTimeScheduler::new(DetRng::new(seed))
    }
}

impl Scheduler for VirtualTimeScheduler {
    fn flush_drop(&mut self, _src: usize, _dst: usize, prob: f64) -> bool {
        self.rng.chance(prob)
    }

    fn wire_chance(&mut self, prob: f64) -> bool {
        self.rng.chance(prob)
    }

    fn rng_state(&self) -> Option<[u64; 4]> {
        Some(self.rng.state())
    }

    fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = DetRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scheduler_is_not_exploring() {
        let s = VirtualTimeScheduler::from_seed(1);
        assert!(!s.exploring());
    }

    #[test]
    fn drop_draws_match_raw_rng() {
        let mut s = VirtualTimeScheduler::new(DetRng::new(9));
        let mut r = DetRng::new(9);
        for i in 0..64 {
            let p = f64::from(i % 3) * 0.4;
            assert_eq!(s.flush_drop(0, 1, p), r.chance(p));
        }
    }

    #[test]
    fn zero_probability_consumes_no_state() {
        let mut s = VirtualTimeScheduler::new(DetRng::new(5));
        let mut r = DetRng::new(5);
        for _ in 0..10 {
            assert!(!s.flush_drop(0, 1, 0.0));
        }
        // The stream is untouched: the next positive draw matches a fresh
        // generator's first draw.
        assert_eq!(s.flush_drop(0, 1, 0.5), r.chance(0.5));
    }

    #[test]
    fn ordering_defaults_are_canonical() {
        let mut s = VirtualTimeScheduler::from_seed(2);
        let cands = vec![
            Candidate {
                actor: 1,
                footprint: vec![3],
            },
            Candidate {
                actor: 0,
                footprint: vec![3],
            },
        ];
        assert_eq!(s.choose(ChoiceKind::Arrival, &cands), 0);
        assert!(!s.defer_migration(0));
        assert!(s.observe_barrier(0xDEAD));
    }

    #[test]
    fn wire_chance_matches_raw_rng_and_zero_is_free() {
        let mut s = VirtualTimeScheduler::new(DetRng::new(11));
        let mut r = DetRng::new(11);
        for _ in 0..10 {
            assert!(!s.wire_chance(0.0), "zero-prob wire draw must be false");
            assert!(!s.flush_duplicate(0, 1, 0.0));
        }
        // No state was consumed above: the streams still agree.
        for i in 0..32 {
            let p = f64::from(i % 4) * 0.3;
            assert_eq!(s.wire_chance(p), r.chance(p));
        }
    }

    #[test]
    fn base_scheduler_defaults_see_a_faultless_wire() {
        // A scripted scheduler that only implements flush_drop inherits
        // fault-free wire defaults and ignores timer notifications.
        struct DropAll;
        impl Scheduler for DropAll {
            fn flush_drop(&mut self, _s: usize, _d: usize, _p: f64) -> bool {
                true
            }
        }
        let mut s = DropAll;
        assert!(!s.wire_chance(1.0));
        assert!(!s.flush_duplicate(0, 1, 1.0));
        s.observe_timer(0, 1, 2);
    }

    #[test]
    fn conflict_detection_is_set_intersection() {
        let a = Candidate {
            actor: 0,
            footprint: vec![1, 4, 9],
        };
        let b = Candidate {
            actor: 1,
            footprint: vec![2, 4],
        };
        let c = Candidate {
            actor: 2,
            footprint: vec![3, 5],
        };
        let empty = Candidate {
            actor: 3,
            footprint: vec![],
        };
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        assert!(!a.conflicts_with(&c));
        assert!(!empty.conflicts_with(&a));
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in [
            ChoiceKind::Drop,
            ChoiceKind::Arrival,
            ChoiceKind::Delivery,
            ChoiceKind::Migration,
            ChoiceKind::Duplicate,
            ChoiceKind::Completion,
        ] {
            assert_eq!(ChoiceKind::from_label(k.label()), Some(k));
        }
        assert_eq!(ChoiceKind::from_label("bogus"), None);
    }
}
