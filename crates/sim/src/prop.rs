//! A small deterministic property-test harness.
//!
//! The workspace builds offline, so it cannot depend on an external
//! property-testing crate; this module provides the subset the test suites
//! need: a seeded case generator over [`DetRng`] and a runner that executes
//! many generated cases, reporting the failing case's seed so it can be
//! replayed in isolation.
//!
//! There is no shrinking — cases are kept small by construction instead,
//! which in practice localizes failures about as quickly for the
//! fixed-shape inputs (pages, copysets, barrier programs) used here.

use crate::rng::DetRng;

/// Per-case generator handed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: DetRng,
    /// Seed that reconstructs this exact case (printed on failure).
    pub case_seed: u64,
}

impl Gen {
    /// A generator for one case.
    pub fn new(case_seed: u64) -> Gen {
        Gen {
            rng: DetRng::new(case_seed),
            case_seed,
        }
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.rng.below(bound as u64) as usize
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// `n` uniformly random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        for chunk in out.chunks_mut(8) {
            let w = self.rng.next_u64().to_ne_bytes();
            let k = chunk.len();
            chunk.copy_from_slice(&w[..k]);
        }
        out
    }

    /// A vector of `len` values drawn by `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

/// Run `cases` generated cases of the property `prop`.
///
/// Each case gets an independent generator seeded from `name` and the case
/// index; a panic inside `prop` is augmented with the case seed so the
/// failure replays with `Gen::new(seed)`.
pub fn check(name: &str, cases: u64, prop: impl Fn(&mut Gen) + std::panic::RefUnwindSafe) {
    // Seed from the property name so distinct properties explore distinct
    // case streams even at the same index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..cases {
        let case_seed = DetRng::new(h ^ i).next_u64();
        let result = std::panic::catch_unwind(|| {
            let mut g = Gen::new(case_seed);
            prop(&mut g);
        });
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {i}/{cases} \
                 (replay with Gen::new({case_seed:#x}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_case() {
        let mut a = Gen::new(77);
        let mut b = Gen::new(77);
        assert_eq!(a.bytes(33), b.bytes(33));
        assert_eq!(a.range(5, 50), b.range(5, 50));
    }

    #[test]
    fn check_runs_all_cases() {
        let counter = std::sync::atomic::AtomicU64::new(0);
        check("counts", 25, |_g| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 25);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn check_propagates_failures() {
        check("fails", 10, |g| {
            // Fail deterministically on a mid-stream case.
            if g.case_seed % 3 == 0 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn bytes_length_exact() {
        let mut g = Gen::new(1);
        for n in [0usize, 1, 7, 8, 9, 255] {
            assert_eq!(g.bytes(n).len(), n);
        }
    }
}
