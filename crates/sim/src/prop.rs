//! A small deterministic property-test harness.
//!
//! The workspace builds offline, so it cannot depend on an external
//! property-testing crate; this module provides the subset the test suites
//! need: a seeded case generator over [`DetRng`] and a runner that executes
//! many generated cases, reporting the failing case's seed so it can be
//! replayed in isolation.
//!
//! There is no shrinking — cases are kept small by construction instead,
//! which in practice localizes failures about as quickly for the
//! fixed-shape inputs (pages, copysets, barrier programs) used here.

use crate::rng::DetRng;

/// Per-case generator handed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: DetRng,
    /// Seed that reconstructs this exact case (printed on failure).
    pub case_seed: u64,
}

impl Gen {
    /// A generator for one case.
    pub fn new(case_seed: u64) -> Gen {
        Gen {
            rng: DetRng::new(case_seed),
            case_seed,
        }
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.rng.below(bound as u64) as usize
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// `n` uniformly random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        for chunk in out.chunks_mut(8) {
            let w = self.rng.next_u64().to_ne_bytes();
            let k = chunk.len();
            chunk.copy_from_slice(&w[..k]);
        }
        out
    }

    /// A vector of `len` values drawn by `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

/// Run `cases` generated cases of the property `prop`.
///
/// Each case gets an independent generator seeded from `name` and the case
/// index; a panic inside `prop` is augmented with the case seed so the
/// failure replays with `Gen::new(seed)`.
pub fn check(name: &str, cases: u64, prop: impl Fn(&mut Gen) + std::panic::RefUnwindSafe) {
    // Seed from the property name so distinct properties explore distinct
    // case streams even at the same index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..cases {
        let case_seed = DetRng::new(h ^ i).next_u64();
        let result = std::panic::catch_unwind(|| {
            let mut g = Gen::new(case_seed);
            prop(&mut g);
        });
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {i}/{cases} \
                 (replay with Gen::new({case_seed:#x}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_case() {
        let mut a = Gen::new(77);
        let mut b = Gen::new(77);
        assert_eq!(a.bytes(33), b.bytes(33));
        assert_eq!(a.range(5, 50), b.range(5, 50));
    }

    #[test]
    fn check_runs_all_cases() {
        let counter = std::sync::atomic::AtomicU64::new(0);
        check("counts", 25, |_g| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 25);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn check_propagates_failures() {
        check("fails", 10, |g| {
            // Fail deterministically on a mid-stream case.
            assert!(g.case_seed % 3 != 0, "boom");
        });
    }

    #[test]
    fn bytes_length_exact() {
        let mut g = Gen::new(1);
        for n in [0usize, 1, 7, 8, 9, 255] {
            assert_eq!(g.bytes(n).len(), n);
        }
    }

    // ---- DetRng stream-splitting properties --------------------------
    //
    // The scheduler refactor leans on `derive`: the cluster hands the
    // network's scheduler a derived stream, so replay stability and
    // parent/child independence are now load-bearing for bit-identity.

    fn draws(r: &mut DetRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| r.next_u64()).collect()
    }

    #[test]
    fn prop_derive_is_replay_stable_across_clone() {
        check("derive-clone-stable", 200, |g| {
            let parent = DetRng::new(g.u64());
            let stream = g.u64();
            // Deriving from a clone (fork) is the same as deriving from
            // the original, and deriving twice gives the same stream.
            let mut a = parent.derive(stream);
            let mut b = parent.clone().derive(stream);
            let mut c = parent.derive(stream);
            let expect = draws(&mut a, 16);
            assert_eq!(expect, draws(&mut b, 16), "clone-derived stream differs");
            assert_eq!(expect, draws(&mut c, 16), "re-derived stream differs");
        });
    }

    #[test]
    fn prop_child_draws_do_not_perturb_parent() {
        check("derive-parent-isolated", 200, |g| {
            let seed = g.u64();
            let stream = g.u64();
            let spin = g.range(1, 64);
            let mut plain = DetRng::new(seed);
            let mut forked = DetRng::new(seed);
            let mut child = forked.derive(stream);
            for _ in 0..spin {
                child.next_u64();
            }
            assert_eq!(
                draws(&mut plain, 16),
                draws(&mut forked, 16),
                "child draws leaked into the parent's sequence"
            );
        });
    }

    #[test]
    fn prop_distinct_streams_are_independent() {
        check("derive-streams-distinct", 200, |g| {
            let parent = DetRng::new(g.u64());
            let s1 = g.u64();
            let mut s2 = g.u64();
            if s2 == s1 {
                s2 = s2.wrapping_add(1);
            }
            let a = draws(&mut parent.derive(s1), 16);
            let b = draws(&mut parent.derive(s2), 16);
            assert_ne!(a, b, "distinct stream ids produced the same stream");
            // The child must not replay the parent's own sequence either.
            let c = draws(&mut parent.clone(), 16);
            assert_ne!(a, c, "child stream mirrors its parent");
            // No positional collisions: across 200 cases x 16 positions,
            // even one equal word would be a red flag for the salt mix.
            let collisions = a.iter().zip(&b).filter(|(x, y)| x == y).count();
            assert_eq!(collisions, 0, "positionally correlated streams");
        });
    }

    #[test]
    fn prop_derivation_is_state_dependent_but_deterministic() {
        check("derive-after-draws", 200, |g| {
            let seed = g.u64();
            let stream = g.u64();
            let spin = g.range(1, 64);
            // Same seed, same draw count, same stream id: same child.
            let mut x = DetRng::new(seed);
            let mut y = DetRng::new(seed);
            for _ in 0..spin {
                x.next_u64();
                y.next_u64();
            }
            let a = draws(&mut x.derive(stream), 8);
            assert_eq!(a, draws(&mut y.derive(stream), 8));
            // Deriving from a different position yields a different child
            // (derivation keys off the parent's current state).
            let fresh = draws(&mut DetRng::new(seed).derive(stream), 8);
            assert_ne!(a, fresh, "derivation ignored the parent's position");
        });
    }
}
