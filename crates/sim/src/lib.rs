//! # dsm-sim — virtual-time simulation substrate
//!
//! This crate provides the execution substrate that plays the role of the
//! paper's 8-node IBM SP-2 and its instrumentation:
//!
//! * [`time`] — a nanosecond-resolution virtual time type ([`time::Time`])
//!   and per-process clocks ([`clock::Clock`]).
//! * [`costs`] — the [`costs::CostModel`], parameterized by default with the
//!   constants the paper measured on AIX / the SP-2 High-Performance Switch
//!   (160 µs RPC, 939 µs remote page fault, 128 µs segv, 12 µs `mprotect`,
//!   40 MB/s links).
//! * [`breakdown`] — the four-way time breakdown of the paper's Figure 3:
//!   application compute, operating-system overhead, `sigio` request
//!   handling, and barrier/fetch wait time.
//! * [`stress`] — the location-dependent `mprotect` degradation model
//!   (the paper reports protection-change costs "occasionally increasing
//!   ... by an order of magnitude" when the address space is manipulated in
//!   large, unpredictable patterns).
//! * [`rng`] — deterministic, seedable random number helpers so that every
//!   run of the simulation is exactly reproducible.
//! * [`sched`] — the decision [`sched::Scheduler`] trait behind which every
//!   environment choice (flush loss, message ordering, migration timing)
//!   lives, with the bit-identical default [`sched::VirtualTimeScheduler`].
//! * [`fault`] — wire [`fault::FaultProfile`]s (iid/burst loss, duplication,
//!   reordering, per-node slowdown) consumed by `dsm-net`'s reliability
//!   sublayer; the default profile is a perfect wire.
//! * [`timer`] — the deterministic [`timer::TimerQueue`] behind
//!   retransmission timeouts.
//! * [`transport`] — the [`transport::TransportKind`] backend selector and
//!   the one-sided [`transport::RdmaParams`] cost model consumed by
//!   `dsm-net`'s `Transport` trait.
//! * [`prop`] — a small deterministic property-test harness built on
//!   [`rng::DetRng`] (the workspace builds offline and carries no external
//!   test dependencies).
//! * [`snapio`] — the byte-level encoder/decoder primitives behind the
//!   `dsm-snap` snapshot format.
//! * [`config`] — simulation-wide configuration shared by the higher layers.
//!
//! Nothing in this crate knows about pages, messages, or protocols; those
//! live in `dsm-vm`, `dsm-net`, and `dsm-core` respectively.

#![forbid(unsafe_code)]

pub mod breakdown;
pub mod clock;
pub mod config;
pub mod costs;
pub mod fasthash;
pub mod fault;
pub mod prop;
pub mod rng;
pub mod sched;
pub mod snapio;
pub mod stress;
pub mod time;
pub mod timer;
pub mod transport;

pub use breakdown::{Category, TimeBreakdown};
pub use clock::Clock;
pub use config::SimConfig;
pub use costs::CostModel;
pub use fasthash::{FastBuild, FastMap, FastSet, IntHasher};
pub use fault::FaultProfile;
pub use rng::DetRng;
pub use sched::{Candidate, ChoiceKind, Scheduler, SharedScheduler, VirtualTimeScheduler};
pub use snapio::{SnapReader, SnapWriter};
pub use stress::StressModel;
pub use time::Time;
pub use timer::{TimerId, TimerQueue};
pub use transport::{RdmaParams, TransportKind};
