//! Deterministic virtual-time timers.
//!
//! The reliability sublayer in `dsm-net` arms a retransmission timer per
//! send attempt and needs the firing order to be exactly reproducible. A
//! [`TimerQueue`] orders timers by `(deadline, armed order)` — ties fire in
//! the order they were armed — and supports O(log n) cancellation by lazy
//! deletion, so acked attempts never fire.
//!
//! The queue knows nothing about what a timer means; callers keep their own
//! `TimerId → purpose` mapping. All state is integer virtual time
//! ([`Time`]), never host time, so a run's timer history is a pure function
//! of its inputs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fasthash::FastSet;
use crate::time::Time;

/// Handle for one armed timer (unique within its queue's lifetime).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct TimerId(u64);

/// A cancellable min-queue of virtual-time deadlines.
#[derive(Debug, Default, Clone)]
pub struct TimerQueue {
    /// Min-heap on (deadline, arm sequence).
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    /// Lazily deleted ids (removed when they surface).
    cancelled: FastSet<u64>,
    next_id: u64,
    live: usize,
}

impl TimerQueue {
    pub fn new() -> TimerQueue {
        TimerQueue::default()
    }

    /// Arm a timer for virtual instant `at`.
    pub fn schedule(&mut self, at: Time) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Reverse((at, id)));
        self.live += 1;
        TimerId(id)
    }

    /// Disarm a timer. Cancelling an already-fired or already-cancelled
    /// timer is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        if self.cancelled.insert(id.0) {
            self.live = self.live.saturating_sub(1);
        }
    }

    /// Pop the next timer with deadline `<= now`, if any. Timers fire in
    /// deadline order; equal deadlines fire in arming order.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, TimerId)> {
        while let Some(&Reverse((at, id))) = self.heap.peek() {
            if self.cancelled.remove(&id) {
                self.heap.pop();
                continue;
            }
            if at > now {
                return None;
            }
            self.heap.pop();
            self.live -= 1;
            return Some((at, TimerId(id)));
        }
        None
    }

    /// Earliest live deadline, if any timers are armed.
    pub fn next_deadline(&mut self) -> Option<Time> {
        while let Some(&Reverse((at, id))) = self.heap.peek() {
            if self.cancelled.remove(&id) {
                self.heap.pop();
                continue;
            }
            return Some(at);
        }
        None
    }

    /// Number of armed (not fired, not cancelled) timers.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Snapshot the live timers in firing order plus the id counter.
    ///
    /// Cancelled-but-unpopped heap entries are dropped: they can never fire,
    /// so a queue restored without them behaves identically. `next_id` is
    /// preserved exactly so ids armed after a restore sort after every
    /// restored id (ties fire in arming order).
    pub fn snapshot_state(&self) -> (Vec<(Time, u64)>, u64) {
        let mut live: Vec<(Time, u64)> = self
            .heap
            .iter()
            .map(|&Reverse(e)| e)
            .filter(|(_, id)| !self.cancelled.contains(id))
            .collect();
        live.sort_unstable();
        (live, self.next_id)
    }

    /// Rebuild a queue from a [`TimerQueue::snapshot_state`] capture.
    pub fn restore_state(&mut self, live: &[(Time, u64)], next_id: u64) {
        self.heap = live.iter().map(|&e| Reverse(e)).collect();
        self.cancelled = FastSet::default();
        self.next_id = next_id;
        self.live = live.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut q = TimerQueue::new();
        let a = q.schedule(Time::from_us(30));
        let b = q.schedule(Time::from_us(10));
        let c = q.schedule(Time::from_us(20));
        assert_eq!(q.pending(), 3);
        assert_eq!(q.pop_due(Time::from_us(100)), Some((Time::from_us(10), b)));
        assert_eq!(q.pop_due(Time::from_us(100)), Some((Time::from_us(20), c)));
        assert_eq!(q.pop_due(Time::from_us(100)), Some((Time::from_us(30), a)));
        assert_eq!(q.pop_due(Time::from_us(100)), None);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn equal_deadlines_fire_in_arming_order() {
        let mut q = TimerQueue::new();
        let t = Time::from_us(5);
        let first = q.schedule(t);
        let second = q.schedule(t);
        assert_eq!(q.pop_due(t), Some((t, first)));
        assert_eq!(q.pop_due(t), Some((t, second)));
    }

    #[test]
    fn respects_now() {
        let mut q = TimerQueue::new();
        q.schedule(Time::from_us(50));
        assert_eq!(q.pop_due(Time::from_us(49)), None);
        assert!(q.pop_due(Time::from_us(50)).is_some());
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut q = TimerQueue::new();
        let a = q.schedule(Time::from_us(1));
        let b = q.schedule(Time::from_us(2));
        q.cancel(a);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.pop_due(Time::from_us(10)), Some((Time::from_us(2), b)));
        // Double-cancel and cancel-after-fire are no-ops.
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.pending(), 0);
        assert_eq!(q.pop_due(Time::from_us(10)), None);
    }

    #[test]
    fn next_deadline_skips_cancelled() {
        let mut q = TimerQueue::new();
        let a = q.schedule(Time::from_us(1));
        q.schedule(Time::from_us(7));
        q.cancel(a);
        assert_eq!(q.next_deadline(), Some(Time::from_us(7)));
    }
}
