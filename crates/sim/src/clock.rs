//! Per-process virtual clocks with category attribution.

use crate::breakdown::{Category, TimeBreakdown};
use crate::time::Time;

/// A simulated process's clock.
///
/// The clock only moves forward, and every advance is attributed to a
/// [`Category`], so `now() == breakdown().total() + base`, where `base` is
/// the instant the clock was last reset (used to exclude warmup iterations
/// from measured statistics, as the paper does).
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: Time,
    // audit: scratch: measurement-window floor, rebased in reset_measurement
    base: Time,
    // audit: scratch: measured time split, zeroed in reset_measurement
    breakdown: TimeBreakdown,
}

impl Clock {
    /// A clock at the virtual epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instant.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advance by `dt`, attributing the span to `cat`.
    #[inline]
    pub fn advance(&mut self, cat: Category, dt: Time) {
        self.now += dt;
        self.breakdown.charge(cat, dt);
    }

    /// Jump forward to `instant` (used for barrier releases), attributing
    /// the waited span to [`Category::Wait`]. No-op if `instant` is in the
    /// past — a process cannot travel backwards.
    pub fn wait_until(&mut self, instant: Time) {
        if instant > self.now {
            let dt = instant - self.now;
            self.advance(Category::Wait, dt);
        }
    }

    /// Elapsed time since the last [`Clock::reset_measurement`].
    #[inline]
    pub fn measured(&self) -> Time {
        self.now - self.base
    }

    /// Start a fresh measurement window at the current instant, clearing the
    /// breakdown. The absolute clock keeps running (processes stay mutually
    /// ordered); only attribution restarts.
    pub fn reset_measurement(&mut self) {
        self.base = self.now;
        self.breakdown = TimeBreakdown::ZERO;
    }

    /// Annotate `dt` of already-charged time as retransmission overhead
    /// (see [`TimeBreakdown::note_retrans`]). The clock does not move.
    #[inline]
    pub fn note_retrans(&mut self, dt: Time) {
        self.breakdown.note_retrans(dt);
    }

    /// Attribution of the current measurement window.
    #[inline]
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Full clock state `(now, base, breakdown)` for snapshot encoding.
    pub fn snapshot_state(&self) -> (Time, Time, TimeBreakdown) {
        (self.now, self.base, self.breakdown)
    }

    /// Restore a [`Clock::snapshot_state`] capture, measurement window and
    /// attribution included.
    pub fn restore_state(&mut self, now: Time, base: Time, breakdown: TimeBreakdown) {
        self.now = now;
        self.base = base;
        self.breakdown = breakdown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_moves_clock_and_attributes() {
        let mut c = Clock::new();
        c.advance(Category::App, Time::from_us(10));
        c.advance(Category::Os, Time::from_us(5));
        assert_eq!(c.now(), Time::from_us(15));
        assert_eq!(c.breakdown().app, Time::from_us(10));
        assert_eq!(c.breakdown().os, Time::from_us(5));
        assert_eq!(c.measured(), c.breakdown().total());
    }

    #[test]
    fn wait_until_future_charges_wait() {
        let mut c = Clock::new();
        c.advance(Category::App, Time::from_us(3));
        c.wait_until(Time::from_us(10));
        assert_eq!(c.now(), Time::from_us(10));
        assert_eq!(c.breakdown().wait, Time::from_us(7));
    }

    #[test]
    fn wait_until_past_is_noop() {
        let mut c = Clock::new();
        c.advance(Category::App, Time::from_us(10));
        c.wait_until(Time::from_us(4));
        assert_eq!(c.now(), Time::from_us(10));
        assert_eq!(c.breakdown().wait, Time::ZERO);
    }

    #[test]
    fn note_retrans_annotates_without_advancing() {
        let mut c = Clock::new();
        c.advance(Category::Wait, Time::from_us(20));
        c.note_retrans(Time::from_us(8));
        assert_eq!(c.now(), Time::from_us(20), "annotation must not move time");
        assert_eq!(c.breakdown().retrans, Time::from_us(8));
        c.reset_measurement();
        assert_eq!(
            c.breakdown().retrans,
            Time::ZERO,
            "window reset clears annex"
        );
    }

    #[test]
    fn reset_measurement_keeps_absolute_time() {
        let mut c = Clock::new();
        c.advance(Category::App, Time::from_us(100));
        c.reset_measurement();
        assert_eq!(c.now(), Time::from_us(100));
        assert_eq!(c.measured(), Time::ZERO);
        assert_eq!(c.breakdown(), TimeBreakdown::ZERO);
        c.advance(Category::Wait, Time::from_us(7));
        assert_eq!(c.measured(), Time::from_us(7));
        assert_eq!(c.now(), Time::from_us(107));
    }
}
