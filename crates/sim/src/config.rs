//! Simulation-wide configuration shared by the higher layers.

use crate::costs::CostModel;
use crate::fault::FaultProfile;
use crate::stress::StressModel;
use crate::transport::{RdmaParams, TransportKind};

/// Default page size: the paper ran CVM with 8 KB protection granularity on
/// AIX's 4 KB pages.
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Default cluster size: the paper's 8-node SP-2.
pub const DEFAULT_NPROCS: usize = 8;

/// Largest supported cluster. Copysets spill past 64 members and every
/// protocol table is sparse, so nothing structural stops at 64 any more;
/// the remaining ceiling is pid width (u16 in notices and certificates)
/// and simulation sanity. 4096 comfortably covers ROADMAP's 1024-node
/// goal.
pub const MAX_NPROCS: usize = 4096;

/// Machine/run configuration consumed by `dsm-net`, `dsm-vm`, and the
/// cluster driver in `dsm-core`.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of simulated processes (paper: 8).
    pub nprocs: usize,
    /// Page (protection) granularity in bytes (paper: 8192).
    pub page_size: usize,
    /// Cost constants (paper's SP-2/AIX measurements by default).
    pub costs: CostModel,
    /// The mprotect stress model.
    pub stress: StressModel,
    /// Master seed for all stochastic behaviour.
    pub seed: u64,
    /// Probability that an unreliable flush message is dropped. The paper
    /// notes flushes "can be unreliable, and therefore do not need to be
    /// acknowledged"; default 0, raised only by robustness tests.
    pub flush_drop_prob: f64,
    /// Wire fault profile for *all* traffic (reliable kinds retransmit,
    /// flushes are simply lost). Default [`FaultProfile::none`], under
    /// which the transport is bit-identical to a perfect wire.
    pub fault: FaultProfile,
    /// Which wire personality carries data traffic (fetches, flushes).
    /// Synchronization traffic always rides the two-sided reliable wire.
    /// Default [`TransportKind::TwoSided`] — the paper's environment.
    pub transport: TransportKind,
    /// One-sided cost parameterization (only consulted under
    /// [`TransportKind::OneSided`]).
    pub rdma: RdmaParams,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nprocs: DEFAULT_NPROCS,
            page_size: DEFAULT_PAGE_SIZE,
            costs: CostModel::default(),
            stress: StressModel::default(),
            seed: 0x5EED_CAFE,
            flush_drop_prob: 0.0,
            fault: FaultProfile::none(),
            transport: TransportKind::TwoSided,
            rdma: RdmaParams::default(),
        }
    }
}

impl SimConfig {
    /// Convenience constructor for an `n`-process configuration, everything
    /// else at defaults.
    pub fn with_nprocs(n: usize) -> Self {
        SimConfig {
            nprocs: n,
            ..SimConfig::default()
        }
    }

    /// Validate invariants the rest of the stack assumes. Returns a list of
    /// human-readable violations (empty == valid).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.nprocs == 0 {
            errs.push("nprocs must be >= 1".into());
        }
        if self.nprocs > MAX_NPROCS {
            errs.push(format!("nprocs must be <= {MAX_NPROCS}"));
        }
        if !self.page_size.is_power_of_two() {
            errs.push(format!(
                "page_size {} must be a power of two",
                self.page_size
            ));
        }
        if self.page_size < 512 {
            errs.push("page_size must be >= 512".into());
        }
        if !(0.0..=1.0).contains(&self.flush_drop_prob) {
            errs.push(format!(
                "flush_drop_prob {} out of [0,1]",
                self.flush_drop_prob
            ));
        }
        errs.extend(self.fault.validate(self.nprocs));
        errs.extend(self.rdma.validate());
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_environment() {
        let c = SimConfig::default();
        assert_eq!(c.nprocs, 8);
        assert_eq!(c.page_size, 8192);
        assert_eq!(c.flush_drop_prob, 0.0);
        assert!(c.validate().is_empty());
    }

    #[test]
    fn with_nprocs_sets_count() {
        assert_eq!(SimConfig::with_nprocs(4).nprocs, 4);
    }

    #[test]
    fn rejects_zero_procs() {
        let c = SimConfig {
            nprocs: 0,
            ..SimConfig::default()
        };
        assert!(!c.validate().is_empty());
    }

    #[test]
    fn rejects_too_many_procs() {
        let c = SimConfig {
            nprocs: MAX_NPROCS + 1,
            ..SimConfig::default()
        };
        assert!(!c.validate().is_empty());
        // 64 is no longer a ceiling: copysets spill, tables are sparse.
        assert!(SimConfig::with_nprocs(256).validate().is_empty());
    }

    #[test]
    fn rejects_non_power_of_two_pages() {
        let c = SimConfig {
            page_size: 5000,
            ..SimConfig::default()
        };
        assert!(!c.validate().is_empty());
    }

    #[test]
    fn rejects_bad_drop_prob() {
        let c = SimConfig {
            flush_drop_prob: 1.5,
            ..SimConfig::default()
        };
        assert!(!c.validate().is_empty());
    }
}
