//! Overdrive: watch bar-s and bar-m strip the OS out of the steady state —
//! and watch bar-m's consistency guarantee evaporate when the sharing
//! pattern diverges (§5 of the paper).
//!
//! Run with: `cargo run --release --example overdrive`

use rdsm::apps::sor::Sor;
use rdsm::apps::Scale;
use rdsm::core::{run_app, ProtocolKind, RunConfig};

fn main() {
    println!("sor under the home-based family (8 procs, paper scale):\n");
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>8} {:>12}",
        "protocol", "speedup", "segvs", "mprotects", "twins", "zero-diffs"
    );
    let baseline = run_app(
        &mut Sor::new(Scale::Paper),
        RunConfig::with_nprocs(ProtocolKind::Seq, 1),
    );
    for protocol in [ProtocolKind::BarU, ProtocolKind::BarS, ProtocolKind::BarM] {
        let report = run_app(
            &mut Sor::new(Scale::Paper),
            RunConfig::with_nprocs(protocol, 8),
        )
        .with_baseline(baseline.elapsed);
        assert_eq!(report.checksum, baseline.checksum);
        let s = &report.stats;
        println!(
            "{:<8} {:>8.2} {:>8} {:>10} {:>8} {:>12}",
            protocol.label(),
            report.speedup().unwrap(),
            s.segvs,
            s.mprotects,
            s.twins,
            s.overdrive_zero_diffs,
        );
    }

    println!(
        "\nbar-s runs the steady state without a single segv; bar-m without a \
         single mprotect.\n"
    );
    println!(
        "The price: bar-m \"is not guaranteed to maintain consistency\" if the \
         access pattern diverges — see tests/overdrive_behavior.rs for the \
         demonstration with a deliberately diverging application."
    );
}
