//! Quickstart: a parallel dot product on the simulated DSM cluster,
//! driven manually (no application framework needed).
//!
//! Run with: `cargo run --release --example quickstart`

use rdsm::core::{Cluster, ProtocolKind, ReduceOp, RunConfig};

fn main() {
    const N: usize = 64 * 1024;
    // An 8-process cluster running the paper's best protocol, bar-u.
    let cfg = RunConfig::new(ProtocolKind::BarU);
    let mut cluster = Cluster::new(cfg);
    let nprocs = cluster.nprocs();

    // Allocate and initialize two shared vectors.
    let (xs, ys) = {
        let mut setup = cluster.setup_ctx();
        let xs = setup.alloc_array::<f64>("xs", N);
        let ys = setup.alloc_array::<f64>("ys", N);
        for i in 0..N {
            setup.init(xs, i, i as f64 * 0.001);
            setup.init(ys, i, (N - i) as f64 * 0.002);
        }
        (xs, ys)
    };
    cluster.distribute();

    // Each process reduces its block; the barrier combines contributions.
    let block = N / nprocs;
    let mut contributions = Vec::new();
    for pid in 0..nprocs {
        let mut ctx = cluster.exec_ctx(pid);
        let (lo, hi) = (pid * block, (pid + 1) * block);
        let mut buf_x = vec![0.0; hi - lo];
        let mut buf_y = vec![0.0; hi - lo];
        xs.read_into(&mut ctx, lo, &mut buf_x);
        ys.read_into(&mut ctx, lo, &mut buf_y);
        let partial: f64 = buf_x.iter().zip(&buf_y).map(|(a, b)| a * b).sum();
        ctx.work_flops(2 * (hi - lo) as u64);
        contributions.push(vec![partial]);
    }
    cluster.barrier_app(Some((ReduceOp::Sum, contributions)));

    // The reduction result is globally visible after the barrier.
    let dot = cluster.exec_ctx(0).reduction()[0];
    println!("dot(xs, ys) = {dot:.3}");

    // Protocol activity so far.
    let stats = cluster.stats();
    println!(
        "protocol events: {} segvs, {} mprotects, {} remote misses, {} messages, {:.1} KB moved",
        stats.segvs,
        stats.mprotects,
        stats.remote_misses,
        stats.paper_messages(),
        stats.data_kbytes(),
    );

    // Sanity: compare with a locally computed value.
    let expected: f64 = (0..N)
        .map(|i| (i as f64 * 0.001) * ((N - i) as f64 * 0.002))
        .sum();
    assert!((dot - expected).abs() < 1e-6 * expected.abs());
    println!("matches the local computation — the DSM is coherent.");
}
