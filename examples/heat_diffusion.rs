//! Heat diffusion: run the `expl` explicit PDE stencil under every
//! protocol and compare speedups and protocol activity — a miniature
//! version of the paper's Figures 2 and 4.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use rdsm::apps::expl::Expl;
use rdsm::apps::Scale;
use rdsm::core::{run_app, ProtocolKind, RunConfig};

fn main() {
    let nprocs = 8;
    println!("expl (explicit heat diffusion), {nprocs} processes, paper scale\n");

    let baseline = run_app(
        &mut Expl::new(Scale::Paper),
        RunConfig::with_nprocs(ProtocolKind::Seq, 1),
    );
    println!(
        "sequential baseline: {:?} (checksum {:.6})\n",
        baseline.elapsed, baseline.checksum
    );

    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "protocol", "speedup", "misses", "diffs", "segvs", "mprotects", "msgs"
    );
    for protocol in [
        ProtocolKind::LmwI,
        ProtocolKind::LmwU,
        ProtocolKind::BarI,
        ProtocolKind::BarU,
        ProtocolKind::BarS,
        ProtocolKind::BarM,
    ] {
        let report = run_app(
            &mut Expl::new(Scale::Paper),
            RunConfig::with_nprocs(protocol, nprocs),
        )
        .with_baseline(baseline.elapsed);
        assert_eq!(
            report.checksum,
            baseline.checksum,
            "{} diverged!",
            protocol.label()
        );
        let s = &report.stats;
        println!(
            "{:<8} {:>8.2} {:>8} {:>8} {:>8} {:>10} {:>8}",
            protocol.label(),
            report.speedup().unwrap(),
            s.remote_misses,
            s.diffs_created,
            s.segvs,
            s.mprotects,
            s.paper_messages(),
        );
    }
    println!("\nevery protocol produced a checksum identical to the sequential run.");
}
