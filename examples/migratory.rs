//! Migratory data — the paper's Figure 1 scenario.
//!
//! A datum `x` moves P1 → P2 → P3 across barrier epochs. Under the
//! homeless protocol, every diff must be retained ("the diff can not be
//! discarded until the system can guarantee that no process will request
//! it in the future"); under the home-based protocol, diffs are flushed to
//! the home and discarded immediately, but the data makes an extra hop
//! through the home.
//!
//! Run with: `cargo run --release --example migratory`

use rdsm::core::{Cluster, ProtocolKind, RunConfig, SharedArray};

fn run(protocol: ProtocolKind) {
    let mut cfg = RunConfig::with_nprocs(protocol, 4);
    cfg.migration = false; // keep the home away from the writers (paper: "P4 is the home")
    let mut cluster = Cluster::new(cfg);

    let x: SharedArray<f64> = {
        let mut s = cluster.setup_ctx();
        let x = s.alloc_array::<f64>("x", 8);
        s.init(x, 0, 1.0);
        x
    };
    cluster.distribute();

    println!("== {} ==", protocol.label());
    // The datum migrates 1 -> 2 -> 3, while process 0 (the initial home)
    // never touches it.
    for (epoch, pid) in [(1usize, 1usize), (2, 2), (3, 3)] {
        let mut ctx = cluster.exec_ctx(pid);
        let v = x.get(&mut ctx, 0);
        x.set(&mut ctx, 0, v * 2.0);
        cluster.barrier_app(None);
        println!(
            "  epoch {epoch}: P{pid} doubled x; retained diffs cluster-wide = {}",
            cluster.retained_diffs()
        );
    }

    let stats = cluster.stats();
    println!(
        "  total: {} remote misses, {} diffs created, {} messages, {:.1} KB\n",
        stats.remote_misses,
        stats.diffs_created,
        stats.paper_messages(),
        stats.data_kbytes()
    );
}

fn main() {
    run(ProtocolKind::LmwI);
    run(ProtocolKind::BarI);
    println!(
        "lmw-i retains every diff (growing state, lazy creation); bar-i's diff \
         lifetimes end inside the barrier, at the price of routing the datum \
         through its home."
    );
}
