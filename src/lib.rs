//! # rdsm — facade crate
//!
//! Re-exports the public API of the whole workspace. See the README for a
//! guided tour and `DESIGN.md` for the architecture.
//!
//! ```
//! use rdsm::core::{Cluster, ProtocolKind, RunConfig};
//!
//! // A 4-process cluster under the paper's bar-u protocol.
//! let mut cluster = Cluster::new(RunConfig::with_nprocs(ProtocolKind::BarU, 4));
//! let xs = {
//!     let mut s = cluster.setup_ctx();
//!     let xs = s.alloc_array::<f64>("xs", 1024);
//!     s.init(xs, 7, 3.5);
//!     xs
//! };
//! cluster.distribute();
//!
//! // Process 2 updates shared memory; after the barrier everyone sees it.
//! {
//!     let mut ctx = cluster.exec_ctx(2);
//!     let v = xs.get(&mut ctx, 7);
//!     xs.set(&mut ctx, 7, v * 2.0);
//! }
//! cluster.barrier_app(None);
//! {
//!     let mut ctx = cluster.exec_ctx(0);
//!     assert_eq!(xs.get(&mut ctx, 7), 7.0);
//! }
//! ```

#![forbid(unsafe_code)]

pub use dsm_apps as apps;
pub use dsm_check as check;
pub use dsm_core as core;
pub use dsm_net as net;
pub use dsm_plan as plan;
pub use dsm_sim as sim;
pub use dsm_vm as vm;
