//! Statistics invariants the paper's prose asserts, checked over the
//! application suite at test scale.

use rdsm::apps::{all_apps, app_by_name, Scale};
use rdsm::core::{run_app, ProtocolKind, RunConfig};

#[test]
fn update_protocols_eliminate_steady_state_misses() {
    // "Both update protocols eliminate the majority of remote misses" —
    // for the static apps, all of them (barnes' dynamic assignment leaves
    // a few lmw-u misses, like the paper's shallow-on-lmw-u exception).
    std::thread::scope(|scope| {
        for spec in all_apps() {
            scope.spawn(move || {
                for protocol in [ProtocolKind::LmwU, ProtocolKind::BarU] {
                    let r = run_app(
                        spec.build(Scale::Small).as_mut(),
                        RunConfig::with_nprocs(protocol, 4),
                    );
                    if spec.name == "barnes" && protocol == ProtocolKind::LmwU {
                        let li = run_app(
                            spec.build(Scale::Small).as_mut(),
                            RunConfig::with_nprocs(ProtocolKind::LmwI, 4),
                        );
                        assert!(
                            r.stats.remote_misses < li.stats.remote_misses / 4,
                            "barnes lmw-u should eliminate most misses"
                        );
                    } else {
                        assert_eq!(
                            r.stats.remote_misses,
                            0,
                            "{} under {}",
                            spec.name,
                            protocol.label()
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn invalidate_protocols_fault_every_iteration() {
    for name in ["sor", "fft", "tomcat"] {
        let spec = app_by_name(name).unwrap();
        for protocol in [ProtocolKind::LmwI, ProtocolKind::BarI] {
            let r = run_app(
                spec.build(Scale::Small).as_mut(),
                RunConfig::with_nprocs(protocol, 4),
            );
            assert!(
                r.stats.remote_misses > 0,
                "{} under {} should keep faulting",
                name,
                protocol.label()
            );
        }
    }
}

#[test]
fn home_effect_cuts_diff_creation() {
    // "The home effect allows bar to create fewer diffs than lmw" — per
    // app at matched scale.
    for name in ["sor", "expl", "jacobi", "shallow", "tomcat"] {
        let spec = app_by_name(name).unwrap();
        let li = run_app(
            spec.build(Scale::Small).as_mut(),
            RunConfig::with_nprocs(ProtocolKind::LmwI, 4),
        );
        let bi = run_app(
            spec.build(Scale::Small).as_mut(),
            RunConfig::with_nprocs(ProtocolKind::BarI, 4),
        );
        assert!(
            bi.stats.diffs_created <= li.stats.diffs_created,
            "{name}: bar-i {} vs lmw-i {}",
            bi.stats.diffs_created,
            li.stats.diffs_created
        );
    }
}

#[test]
fn bar_i_satisfies_misses_with_whole_pages() {
    // bar-i's data volume per miss is a full page; lmw-i moves diffs.
    let spec = app_by_name("sor").unwrap();
    let li = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::LmwI, 4),
    );
    let bi = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::BarI, 4),
    );
    let li_per_miss = li.stats.net.total_payload_bytes() as f64 / li.stats.remote_misses as f64;
    let bi_per_miss = bi.stats.net.total_payload_bytes() as f64 / bi.stats.remote_misses as f64;
    assert!(
        bi_per_miss > li_per_miss,
        "bar-i {bi_per_miss:.0} B/miss vs lmw-i {li_per_miss:.0} B/miss"
    );
    assert!(
        bi_per_miss >= 8192.0,
        "a bar-i miss moves at least one whole page"
    );
}

#[test]
fn overdrive_traffic_matches_bar_u_exactly() {
    // §5.1: "bar-u, bar-s and bar-m send exactly the same number of
    // messages and communicate the same amount of data."
    for name in ["sor", "jacobi", "fft", "swm"] {
        let spec = app_by_name(name).unwrap();
        let bu = run_app(
            spec.build(Scale::Small).as_mut(),
            RunConfig::with_nprocs(ProtocolKind::BarU, 4),
        );
        for protocol in [ProtocolKind::BarS, ProtocolKind::BarM] {
            let r = run_app(
                spec.build(Scale::Small).as_mut(),
                RunConfig::with_nprocs(protocol, 4),
            );
            assert_eq!(
                r.stats.paper_messages(),
                bu.stats.paper_messages(),
                "{name} {} messages",
                protocol.label()
            );
            assert_eq!(
                r.stats.net.total_payload_bytes(),
                bu.stats.net.total_payload_bytes(),
                "{name} {} bytes",
                protocol.label()
            );
        }
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let spec = app_by_name("shallow").unwrap();
    let a = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::LmwU, 4),
    );
    let b = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::LmwU, 4),
    );
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.stats.diffs_created, b.stats.diffs_created);
    assert_eq!(a.stats.paper_messages(), b.stats.paper_messages());
    assert_eq!(a.stats.segvs, b.stats.segvs);
    assert_eq!(a.stats.mprotects, b.stats.mprotects);
}

#[test]
fn time_breakdown_accounts_for_all_elapsed_time() {
    let spec = app_by_name("swm").unwrap();
    let r = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::BarU, 4),
    );
    for (pid, b) in r.per_proc.iter().enumerate() {
        assert!(
            b.total() <= r.elapsed,
            "process {pid} breakdown exceeds the window"
        );
        assert!(b.total().as_ns() > 0, "process {pid} did nothing?");
    }
    // The slowest process defines the elapsed window exactly.
    let max = r
        .per_proc
        .iter()
        .map(rdsm::sim::TimeBreakdown::total)
        .max()
        .unwrap();
    assert_eq!(max, r.elapsed);
}

#[test]
fn flush_loss_degrades_but_never_corrupts() {
    // "Lost flush messages do not affect correctness, only performance."
    let spec = app_by_name("expl").unwrap();
    let seq = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::Seq, 1),
    );
    let mut clean_cfg = RunConfig::with_nprocs(ProtocolKind::LmwU, 4);
    clean_cfg.warmup_iters = 0;
    let clean = run_app(spec.build(Scale::Small).as_mut(), clean_cfg);
    for drop in [0.1, 0.5, 1.0] {
        let mut cfg = RunConfig::with_nprocs(ProtocolKind::LmwU, 4);
        cfg.sim.flush_drop_prob = drop;
        cfg.warmup_iters = 0;
        let r = run_app(spec.build(Scale::Small).as_mut(), cfg);
        assert_eq!(r.checksum, seq.checksum, "drop={drop} corrupted the run");
        if drop == 1.0 {
            assert!(
                r.stats.remote_misses > clean.stats.remote_misses,
                "total flush loss must force fault-time fetches"
            );
        }
    }
}

#[test]
fn lmw_reduction_emulation_matches_native() {
    // jacobi's residual reduction must produce identical results whether
    // it rides the barrier (bar) or shared memory (lmw).
    let spec = app_by_name("jacobi").unwrap();
    let native = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::BarU, 4),
    );
    let emulated = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::LmwU, 4),
    );
    assert_eq!(native.checksum, emulated.checksum);
    assert!(
        emulated.stats.barriers > native.stats.barriers,
        "the emulation costs extra barriers"
    );
}
