//! The full correctness matrix: every application × every protocol must
//! produce results bitwise-identical to the sequential run. Under our
//! deterministic execution model, a correct protocol cannot perturb a
//! data-race-free program at all — so exact equality is the bar.

use rdsm::apps::{all_apps, Scale};
use rdsm::core::{run_app, ProtocolKind, RunConfig};

const PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::LmwI,
    ProtocolKind::LmwU,
    ProtocolKind::BarI,
    ProtocolKind::BarU,
    ProtocolKind::BarS,
    ProtocolKind::BarM,
];

#[test]
fn every_app_under_every_protocol_matches_sequential() {
    std::thread::scope(|scope| {
        for spec in all_apps() {
            scope.spawn(move || {
                let seq = run_app(
                    spec.build(Scale::Small).as_mut(),
                    RunConfig::with_nprocs(ProtocolKind::Seq, 1),
                );
                assert!(
                    seq.checksum.is_finite(),
                    "{}: bad sequential run",
                    spec.name
                );
                for protocol in PROTOCOLS {
                    let par = run_app(
                        spec.build(Scale::Small).as_mut(),
                        RunConfig::with_nprocs(protocol, 4),
                    );
                    assert_eq!(
                        par.checksum,
                        seq.checksum,
                        "{} under {} diverged",
                        spec.name,
                        protocol.label()
                    );
                }
            });
        }
    });
}

#[test]
fn correctness_holds_across_process_counts() {
    let spec = rdsm::apps::app_by_name("jacobi").unwrap();
    let seq = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::Seq, 1),
    );
    for nprocs in [2usize, 3, 5, 8, 16] {
        for protocol in [ProtocolKind::LmwU, ProtocolKind::BarU] {
            let par = run_app(
                spec.build(Scale::Small).as_mut(),
                RunConfig::with_nprocs(protocol, nprocs),
            );
            assert_eq!(
                par.checksum,
                seq.checksum,
                "jacobi {} x{nprocs} diverged",
                protocol.label()
            );
        }
    }
}

#[test]
fn correctness_holds_at_4k_pages() {
    let spec = rdsm::apps::app_by_name("sor").unwrap();
    let mut seq_cfg = RunConfig::with_nprocs(ProtocolKind::Seq, 1);
    seq_cfg.sim.page_size = 4096;
    let seq = run_app(spec.build(Scale::Small).as_mut(), seq_cfg);
    for protocol in PROTOCOLS {
        let mut cfg = RunConfig::with_nprocs(protocol, 4);
        cfg.sim.page_size = 4096;
        let par = run_app(spec.build(Scale::Small).as_mut(), cfg);
        assert_eq!(
            par.checksum,
            seq.checksum,
            "sor {} at 4K pages diverged",
            protocol.label()
        );
    }
}

#[test]
fn single_process_protocol_runs_degenerate_gracefully() {
    // Every protocol with nprocs=1 must still work (no messages possible).
    let spec = rdsm::apps::app_by_name("expl").unwrap();
    let seq = run_app(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::Seq, 1),
    );
    for protocol in PROTOCOLS {
        let par = run_app(
            spec.build(Scale::Small).as_mut(),
            RunConfig::with_nprocs(protocol, 1),
        );
        assert_eq!(par.checksum, seq.checksum, "{} x1", protocol.label());
        assert_eq!(par.stats.remote_misses, 0);
        assert_eq!(
            par.stats.paper_messages(),
            0,
            "{} x1 sent messages",
            protocol.label()
        );
    }
}
