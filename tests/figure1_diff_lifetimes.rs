//! The paper's Figure 1: migratory data and diff lifetimes.
//!
//! Homeless protocols must retain every diff until garbage collection
//! ("no diff, nor any of the write notices that name diffs, can be
//! discarded until garbage-collection occurs"); home-based protocols
//! discard diffs within the barrier that flushed them.

use rdsm::core::{Cluster, ProtocolKind, RunConfig, SharedArray};

/// Drive the migratory scenario: x moves P1 -> P2 -> P3, P0 is the
/// (unmigrated) home that never touches it.
fn migrate(protocol: ProtocolKind, epochs: usize) -> Cluster {
    let mut cfg = RunConfig::with_nprocs(protocol, 4);
    cfg.migration = false;
    let mut cluster = Cluster::new(cfg);
    let x: SharedArray<f64> = {
        let mut s = cluster.setup_ctx();
        let x = s.alloc_array::<f64>("x", 1);
        s.init(x, 0, 1.0);
        x
    };
    cluster.distribute();
    for e in 0..epochs {
        let pid = 1 + (e % 3);
        let mut ctx = cluster.exec_ctx(pid);
        let v = x.get(&mut ctx, 0);
        x.set(&mut ctx, 0, v + 1.0);
        cluster.barrier_app(None);
    }
    // Final value visible in the snapshot.
    let c = cluster.check_ctx();
    assert_eq!(c.read(x, 0), 1.0 + epochs as f64);
    cluster
}

#[test]
fn homeless_diffs_accumulate() {
    let cluster = migrate(ProtocolKind::LmwI, 6);
    // Each migration hop seals the previous writer's diff, which must
    // then be retained (a later process may still request it).
    assert!(
        cluster.retained_diffs() >= 5,
        "lmw-i must retain per-interval diffs, got {}",
        cluster.retained_diffs()
    );
}

#[test]
fn home_based_diffs_die_inside_the_barrier() {
    let cluster = migrate(ProtocolKind::BarI, 6);
    assert_eq!(
        cluster.retained_diffs(),
        0,
        "bar-i must discard diffs at the barrier"
    );
}

#[test]
fn migratory_data_routes_through_the_home_under_bar() {
    // "Consider the case where a fourth process, P4, is the home node for
    // the page. In this case, both P1 and P2 will send diffs to P4. Both
    // P2 and P3 will then request copies of the page from P4, a node that
    // isn't even involved in the communication."
    let cluster = migrate(ProtocolKind::BarI, 3);
    let stats = cluster.stats();
    // Diff flushes to the home, one per writing epoch.
    assert!(stats.net.msgs_of(rdsm::net::MsgKind::DiffFlushHome) >= 3);
    // Page fetches from the home by the next writer.
    assert!(stats.net.msgs_of(rdsm::net::MsgKind::PageRequest) >= 2);
}

#[test]
fn migratory_data_travels_directly_under_lmw() {
    // "By contrast, the data travels directly from one process to the next
    // in a homeless protocol."
    let cluster = migrate(ProtocolKind::LmwI, 3);
    let stats = cluster.stats();
    assert_eq!(stats.net.msgs_of(rdsm::net::MsgKind::DiffFlushHome), 0);
    assert!(stats.net.msgs_of(rdsm::net::MsgKind::DiffRequest) >= 2);
}

#[test]
fn garbage_collection_reclaims_homeless_state() {
    let mut cfg = RunConfig::with_nprocs(ProtocolKind::LmwI, 4);
    cfg.migration = false;
    cfg.gc_diff_threshold = 3; // force GC quickly
    let mut cluster = Cluster::new(cfg);
    let x: SharedArray<f64> = {
        let mut s = cluster.setup_ctx();
        let x = s.alloc_array::<f64>("x", 1);
        s.init(x, 0, 1.0);
        x
    };
    cluster.distribute();
    for e in 0..12 {
        let pid = 1 + (e % 3);
        let mut ctx = cluster.exec_ctx(pid);
        let v = x.get(&mut ctx, 0);
        x.set(&mut ctx, 0, v + 1.0);
        cluster.barrier_app(None);
    }
    let stats = cluster.stats();
    assert!(stats.gc_events > 0, "GC must have triggered");
    assert!(stats.gc_diffs_discarded > 0);
    // Correctness across GC.
    let c = cluster.check_ctx();
    assert_eq!(c.read(x, 0), 13.0);
}
