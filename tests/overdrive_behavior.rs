//! Overdrive semantics under divergence (the paper's §5.2 caveat):
//! bar-s traps unanticipated writes (and can revert or abort); bar-m
//! silently misses wrong-epoch writes to pre-enabled pages — "bar-m is
//! therefore not guaranteed to maintain consistency."

use rdsm::core::{
    run_app, CheckCtx, DivergencePolicy, DsmApp, ExecCtx, PhaseEnd, ProtocolKind, RunConfig,
    SetupCtx, SharedGrid2,
};

/// A two-phase app over a fixed 4-row layout (row r owned by process
/// `r % nprocs`, so the computed function is independent of the process
/// count): stable write sets, except that at `rogue_iter` process 0
/// writes its phase-0 row during phase 1 — in a slot that phase 0 never
/// touches. Later epochs read that slot, so a missed propagation changes
/// the final result.
struct Diverge {
    /// grid a: row r written by its owner in phase 0 (slot 0 = f(iter);
    /// slot 1 is only written by the divergent access).
    a: Option<SharedGrid2<f64>>,
    /// grid b: row r accumulates what its owner read from the next row.
    b: Option<SharedGrid2<f64>>,
    rogue_iter: Option<usize>,
    iters: usize,
    cols: usize,
}

/// Fixed logical row count, independent of the cluster size.
const ROWS: usize = 4;

impl Diverge {
    fn new(rogue_iter: Option<usize>, iters: usize) -> Diverge {
        Diverge {
            a: None,
            b: None,
            rogue_iter,
            iters,
            cols: 16,
        }
    }
}

impl DsmApp for Diverge {
    fn name(&self) -> &'static str {
        "diverge"
    }

    fn phases(&self) -> usize {
        2
    }

    fn iters(&self) -> usize {
        self.iters
    }

    fn setup(&mut self, s: &mut SetupCtx<'_>) {
        let a = s.alloc_grid::<f64>("dv_a", ROWS, self.cols);
        let b = s.alloc_grid::<f64>("dv_b", ROWS, self.cols);
        for r in 0..ROWS {
            s.init_row(a, r, &vec![0.0; self.cols]);
            s.init_row(b, r, &vec![0.0; self.cols]);
        }
        self.a = Some(a);
        self.b = Some(b);
    }

    fn phase(&mut self, ctx: &mut ExecCtx<'_>, iter: usize, site: usize) -> PhaseEnd {
        let (a, b) = (self.a.unwrap(), self.b.unwrap());
        let p = ctx.pid();
        let n = ctx.nprocs();
        if site == 0 {
            for r in (0..ROWS).filter(|r| r % n == p) {
                // Read the next row's slot 1 from the previous epoch
                // (only ever written by the divergent access, so a
                // missed propagation is observable here), then update
                // this row. Word-disjoint from the concurrent slot-0
                // writes: race-free.
                let q = (r + 1) % ROWS;
                let v1 = a.get(ctx, q, 1);
                let acc = b.get(ctx, r, 0);
                b.set(ctx, r, 0, acc + (iter + 1) as f64 + 2.0 * v1);
                a.set(ctx, r, 0, (iter * 10 + r) as f64);
                ctx.work_flops(8);
            }
        } else {
            // Phase 1 normally writes nothing at all.
            ctx.work_flops(4);
            if self.rogue_iter == Some(iter) && p == 0 {
                // The unanticipated write: page a[0] belongs to phase
                // 0's write set, not phase 1's.
                a.set(ctx, 0, 1, 999.0);
            }
        }
        PhaseEnd::Barrier
    }

    fn check(&self, c: &CheckCtx<'_>) -> f64 {
        let (a, b) = (self.a.unwrap(), self.b.unwrap());
        let mut acc = 0.0;
        for p in 0..a.rows() {
            acc += c.read_grid(a, p, 0) + 3.0 * c.read_grid(a, p, 1) + 7.0 * c.read_grid(b, p, 0);
        }
        acc
    }
}

fn cfg(protocol: ProtocolKind, policy: DivergencePolicy, validate: bool) -> RunConfig {
    let mut cfg = RunConfig::with_nprocs(protocol, 4);
    cfg.overdrive.policy = policy;
    cfg.overdrive.validate = validate;
    cfg
}

#[test]
fn stable_app_engages_overdrive_cleanly() {
    for protocol in [ProtocolKind::BarS, ProtocolKind::BarM] {
        let r = run_app(
            &mut Diverge::new(None, 8),
            cfg(protocol, DivergencePolicy::Abort, false),
        );
        assert_eq!(r.stats.segvs, 0, "{}", protocol.label());
        assert_eq!(r.stats.overdrive_unanticipated, 0);
    }
}

#[test]
fn bar_s_traps_divergence_and_reverts_correctly() {
    let seq = run_app(
        &mut Diverge::new(Some(5), 8),
        RunConfig::with_nprocs(ProtocolKind::Seq, 1),
    );
    let r = run_app(
        &mut Diverge::new(Some(5), 8),
        cfg(ProtocolKind::BarS, DivergencePolicy::Revert, false),
    );
    assert!(r.stats.overdrive_unanticipated > 0, "the write must trap");
    assert_eq!(r.stats.overdrive_reversions, 1, "one cluster reversion");
    assert_eq!(
        r.checksum, seq.checksum,
        "bar-s with Revert must stay correct"
    );
}

#[test]
#[should_panic(expected = "overdrive divergence")]
fn bar_s_abort_policy_complains_loudly_and_exits() {
    let _ = run_app(
        &mut Diverge::new(Some(5), 8),
        cfg(ProtocolKind::BarS, DivergencePolicy::Abort, false),
    );
}

#[test]
fn bar_m_misses_wrong_epoch_writes_silently() {
    // The same diverging program: the write goes to a pre-enabled page in
    // the wrong epoch, so no trap fires, nothing is flushed, and the final
    // result silently differs from the sequential run.
    let seq = run_app(
        &mut Diverge::new(Some(5), 8),
        RunConfig::with_nprocs(ProtocolKind::Seq, 1),
    );
    let r = run_app(
        &mut Diverge::new(Some(5), 8),
        cfg(ProtocolKind::BarM, DivergencePolicy::Abort, true),
    );
    assert_eq!(
        r.stats.overdrive_unanticipated, 0,
        "bar-m must NOT trap the wrong-epoch write (that is the hazard)"
    );
    assert!(
        r.stats.consistency_violations > 0,
        "the validate-mode checker must observe the missed write"
    );
    assert_ne!(
        r.checksum, seq.checksum,
        "bar-m's result must differ — it is not guaranteed to maintain consistency"
    );
}

#[test]
fn bar_m_traps_writes_outside_the_enabled_union() {
    /// Diverges by writing a page bar-m never pre-enabled (process 0
    /// writes a dedicated never-written page).
    struct OutsideUnion {
        inner: Diverge,
        extra: Option<SharedGrid2<f64>>,
    }
    impl DsmApp for OutsideUnion {
        fn name(&self) -> &'static str {
            "outside-union"
        }
        fn phases(&self) -> usize {
            self.inner.phases()
        }
        fn iters(&self) -> usize {
            self.inner.iters()
        }
        fn setup(&mut self, s: &mut SetupCtx<'_>) {
            self.inner.setup(s);
            let extra = s.alloc_grid::<f64>("dv_extra", 1, 8);
            s.init_row(extra, 0, &[0.0; 8]);
            self.extra = Some(extra);
        }
        fn phase(&mut self, ctx: &mut ExecCtx<'_>, iter: usize, site: usize) -> PhaseEnd {
            let end = self.inner.phase(ctx, iter, site);
            if iter == 5 && site == 1 && ctx.pid() == 0 {
                self.extra.unwrap().set(ctx, 0, 0, 42.0);
            }
            end
        }
        fn check(&self, c: &CheckCtx<'_>) -> f64 {
            self.inner.check(c) + c.read_grid(self.extra.unwrap(), 0, 0)
        }
    }

    let seq = run_app(
        &mut OutsideUnion {
            inner: Diverge::new(None, 8),
            extra: None,
        },
        RunConfig::with_nprocs(ProtocolKind::Seq, 1),
    );
    let r = run_app(
        &mut OutsideUnion {
            inner: Diverge::new(None, 8),
            extra: None,
        },
        cfg(ProtocolKind::BarM, DivergencePolicy::Revert, false),
    );
    assert!(
        r.stats.overdrive_unanticipated > 0,
        "a write outside the union is still protected and must trap"
    );
    assert_eq!(r.checksum, seq.checksum, "revert keeps bar-m correct here");
}

#[test]
fn barnes_never_runs_trap_free() {
    use rdsm::apps::{barnes::Barnes, Scale};
    let r = run_app(
        &mut Barnes::new(Scale::Small),
        cfg(ProtocolKind::BarS, DivergencePolicy::Revert, false),
    );
    assert!(
        r.stats.segvs > 0,
        "barnes' dynamic sharing must keep write-trapping alive"
    );
}
