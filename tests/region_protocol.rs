//! Tier-1 guarantees of the region-granularity protocol.
//!
//! * `bar-r` races `bar-u` on sor and shallow under the full oracle stack
//!   (race detector, LRC value oracle, protocol invariants, elision
//!   grounding): identical final checksums, zero violations, and strictly
//!   fewer flushed diff bytes on at least one statically proven
//!   false-shared page — the first measured traffic win of the region
//!   certificates;
//! * a property test of the delta-commutativity claim itself: on any page
//!   where two writers' recorded dirty ranges fall inside disjoint spans,
//!   the `Diff::between_ranges` deltas commute (either application order
//!   yields the same bytes), and the twin-free `Diff::capture` delta is
//!   equivalent to the twin-based diff.

use std::sync::Arc;

use rdsm::apps::{app_by_name, Scale};
use rdsm::check::checked_run;
use rdsm::core::{PageClass, ProtocolKind, RunConfig};
use rdsm::plan::{analyze, build_schedule, prove_regions};
use rdsm::sim::prop::{check, Gen};
use rdsm::vm::{Diff, DirtyRanges, PageBuf, PageId};

const NPROCS: usize = 8;

fn race_protocols(name: &str) {
    let spec = app_by_name(name).expect("known app");
    let mut probe = spec.build_planned(Scale::Small);
    let an = analyze(probe.as_mut(), NPROCS);
    let sched = build_schedule(&an.plan, ProtocolKind::BarR, an.iters);
    let rt = Arc::new(prove_regions(&an.plan, &an.layout, &sched));
    let false_shared: Vec<u32> = rt
        .iter()
        .filter(|c| c.class == PageClass::FalseShared)
        .map(|c| c.page)
        .collect();
    assert!(
        !false_shared.is_empty(),
        "{name}: prover found no false-shared page at nprocs={NPROCS}"
    );

    let (ru, cu) = checked_run(
        spec.build(Scale::Small).as_mut(),
        RunConfig::with_nprocs(ProtocolKind::BarU, NPROCS),
    );
    assert!(cu.is_clean(), "{name}/bar-u:\n{}", cu.summary());

    let mut cfg = RunConfig::with_nprocs(ProtocolKind::BarR, NPROCS);
    cfg.regions = Some(Arc::clone(&rt));
    let (rr, cr) = checked_run(spec.build(Scale::Small).as_mut(), cfg);
    assert!(cr.is_clean(), "{name}/bar-r:\n{}", cr.summary());

    assert_eq!(
        rr.checksum.to_bits(),
        ru.checksum.to_bits(),
        "{name}: bar-r checksum diverged from bar-u"
    );
    assert!(
        rr.stats.region_twin_skips > 0,
        "{name}: no certified write fault ever skipped its twin"
    );

    // The measured win: on at least one proven false-shared page, bar-r
    // flushes strictly fewer diff bytes than bar-u (elided pushes toward
    // certified non-readers).
    let bytes = |r: &rdsm::core::RunReport, p: u32| {
        r.stats
            .flush_bytes_by_page
            .get(p as usize)
            .copied()
            .unwrap_or(0)
    };
    let improved: Vec<u32> = false_shared
        .iter()
        .copied()
        .filter(|&p| bytes(&rr, p) < bytes(&ru, p))
        .collect();
    assert!(
        !improved.is_empty(),
        "{name}: no false-shared page shipped fewer bytes under bar-r \
         (pages {false_shared:?}, bar-u bytes {:?}, bar-r bytes {:?})",
        false_shared
            .iter()
            .map(|&p| bytes(&ru, p))
            .collect::<Vec<_>>(),
        false_shared
            .iter()
            .map(|&p| bytes(&rr, p))
            .collect::<Vec<_>>(),
    );
}

#[test]
fn barr_beats_baru_on_sor() {
    race_protocols("sor");
}

#[test]
fn barr_beats_baru_on_shallow() {
    race_protocols("shallow");
}

/// The commutation proof obligation, checked dynamically on random data:
/// disjoint spans ⇒ disjoint dirty ranges ⇒ the two writers' deltas
/// commute, and the twin-free capture is application-equivalent to the
/// twin-based diff.
#[test]
fn disjoint_span_deltas_commute() {
    const PS: usize = 4096;
    check("disjoint_span_deltas_commute", 200, |g: &mut Gen| {
        // Partition the page's 512 words into alternating chunks owned by
        // writer A, writer B, or nobody. Chunks are at least 24 words so
        // that one contiguous store run per chunk keeps each writer's
        // exact dirty-range count under `DirtyRanges::MAX_RANGES` — the
        // coarse (scattered-store) regime has its own property test
        // below.
        let mut spans_a: Vec<(u32, u32)> = Vec::new();
        let mut spans_b: Vec<(u32, u32)> = Vec::new();
        let mut word = 0usize;
        while word < PS / 8 {
            let len = g.range(24, 65).min(PS / 8 - word);
            let (lo, hi) = ((word * 8) as u32, ((word + len) * 8) as u32);
            // Adjacent same-owner chunks coalesce into one span, exactly
            // like the prover's span-set union does.
            let push = |spans: &mut Vec<(u32, u32)>| match spans.last_mut() {
                Some(last) if last.1 == lo => last.1 = hi,
                _ => spans.push((lo, hi)),
            };
            match g.below(3) {
                0 => push(&mut spans_a),
                1 => push(&mut spans_b),
                _ => {}
            }
            word += len;
        }

        let mut pristine = PageBuf::zeroed(PS);
        for (i, b) in pristine.bytes_mut().iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }

        // Each writer stores one contiguous random band strictly inside
        // every one of its spans, recording dirty ranges exactly like the
        // write-fault path.
        let mut write_some = |spans: &[(u32, u32)]| {
            let mut cur = pristine.clone();
            let mut dirty = DirtyRanges::new();
            for &(lo, hi) in spans {
                let words = ((hi - lo) / 8) as usize;
                let n = g.range(1, words + 1);
                let at = g.below(words - n + 1);
                for w in at..at + n {
                    let off = lo as usize + w * 8;
                    let val = g.u64().to_le_bytes();
                    cur.bytes_mut()[off..off + 8].copy_from_slice(&val);
                    dirty.insert(off, 8);
                }
            }
            (cur, dirty)
        };
        let (cur_a, dirty_a) = write_some(&spans_a);
        let (cur_b, dirty_b) = write_some(&spans_b);

        // Static disjointness implies dynamic disjointness: recorded
        // ranges stay within the owning spans and never intersect.
        assert!(!dirty_a.is_all() && !dirty_b.is_all());
        assert!(dirty_a.within(&spans_a));
        assert!(dirty_b.within(&spans_b));
        for (alo, ahi) in dirty_a.iter() {
            for (blo, bhi) in dirty_b.iter() {
                assert!(ahi <= blo || bhi <= alo, "dirty ranges overlap");
            }
        }

        let da = Diff::between_ranges(PageId(0), &pristine, &cur_a, &dirty_a);
        let db = Diff::between_ranges(PageId(0), &pristine, &cur_b, &dirty_b);

        // Commutation: apply in both orders, identical result.
        let mut ab = pristine.clone();
        da.apply_to(&mut ab);
        db.apply_to(&mut ab);
        let mut ba = pristine.clone();
        db.apply_to(&mut ba);
        da.apply_to(&mut ba);
        assert_eq!(ab.bytes(), ba.bytes(), "deltas failed to commute");

        // The twin-free capture over the recorded ranges is equivalent to
        // the twin-based diff under application: unmodified captured
        // words re-ship their (identical) values.
        let ranges_a: Vec<(u32, u32)> = dirty_a.iter().collect();
        let cap_a = Diff::capture(PageId(0), &cur_a, &ranges_a);
        let mut via_diff = pristine.clone();
        da.apply_to(&mut via_diff);
        let mut via_capture = pristine.clone();
        cap_a.apply_to(&mut via_capture);
        assert_eq!(
            via_diff.bytes(),
            via_capture.bytes(),
            "capture delta diverged from twin diff"
        );
    });
}

/// The scattered-store regime: when single-word stores overflow
/// `DirtyRanges::MAX_RANGES`, twin-free tracking coarsens (min-gap
/// merging) instead of collapsing. The coarse cover, clipped back to the
/// writer's proven spans exactly as `bar-r`'s flush does, must still
/// cover every store, stay bounded, and produce a capture that is
/// application-equivalent to the writer's true delta: captured pages
/// match the written page on the spans and the pristine page off them.
#[test]
fn coarse_cover_capture_stays_sound() {
    const PS: usize = 4096;
    let clip = |ranges: &DirtyRanges, spans: &[(u32, u32)]| -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (rs, re) in ranges.iter() {
            for &(ss, se) in spans {
                let (lo, hi) = (rs.max(ss), re.min(se));
                if lo < hi {
                    out.push((lo, hi));
                }
            }
        }
        out
    };
    check("coarse_cover_capture_stays_sound", 200, |g: &mut Gen| {
        // The writer owns the first 8 words of every 16-word chunk: 32
        // spans, more than `MAX_RANGES`, so the coarse cover is forced to
        // merge across span gaps and the clipping step is load-bearing.
        let spans: Vec<(u32, u32)> = (0..PS / 128)
            .map(|c| ((c * 128) as u32, (c * 128 + 64) as u32))
            .collect();

        let mut pristine = PageBuf::zeroed(PS);
        for (i, b) in pristine.bytes_mut().iter_mut().enumerate() {
            *b = (i % 241) as u8;
        }
        let mut cur = pristine.clone();
        let mut cover = DirtyRanges::new();
        let mut written: Vec<usize> = Vec::new();
        for &(lo, hi) in &spans {
            for w in 0..(hi - lo) / 8 {
                if g.chance(0.5) {
                    let off = (lo + w * 8) as usize;
                    cur.bytes_mut()[off..off + 8].copy_from_slice(&g.u64().to_le_bytes());
                    cover.insert_coarse(off, 8);
                    written.push(off);
                }
            }
        }

        // Bounded, never collapsed, and still a cover of every store.
        assert!(!cover.is_all(), "coarse tracking must never collapse");
        assert!(cover.len() <= DirtyRanges::MAX_RANGES);
        for &off in &written {
            assert!(cover.covers(off), "store at {off} escaped the cover");
        }

        // Clip to the proven spans (the flush path's soundness step: a
        // coarse range may straddle a gap into another writer's words)
        // and capture verbatim.
        let clipped = clip(&cover, &spans);
        let cap = Diff::capture(PageId(0), &cur, &clipped);
        let mut applied = pristine.clone();
        cap.apply_to(&mut applied);

        // Application-equivalence to the true delta: the writer's spans
        // carry the written page, everything else is untouched.
        let in_spans = |off: u32| spans.iter().any(|&(s, e)| s <= off && off < e);
        for off in (0..PS).step_by(8) {
            let (a, c, p) = (
                &applied.bytes()[off..off + 8],
                &cur.bytes()[off..off + 8],
                &pristine.bytes()[off..off + 8],
            );
            if in_spans(off as u32) {
                assert_eq!(a, c, "word {off} inside spans lost the write");
            } else {
                assert_eq!(a, p, "word {off} outside spans was touched");
            }
        }
    });
}
